(* Unit tests for the stats substrate: counters, Welford accumulators,
   histograms, series and table rendering. *)

let test_counter_basics () =
  let registry = Stats.Counter.Registry.create () in
  let c = Stats.Counter.Registry.counter registry "reads" in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Stats.Counter.value c);
  Alcotest.(check string) "name" "reads" (Stats.Counter.name c);
  Alcotest.(check int) "find" 5 (Stats.Counter.Registry.find registry "reads");
  Alcotest.(check int) "find missing = 0" 0 (Stats.Counter.Registry.find registry "absent");
  Alcotest.check_raises "monotonic" (Invalid_argument "Counter.add: counters are monotonic")
    (fun () -> Stats.Counter.add c (-1))

let test_counter_identity () =
  let registry = Stats.Counter.Registry.create () in
  let a = Stats.Counter.Registry.counter registry "x" in
  let b = Stats.Counter.Registry.counter registry "x" in
  Stats.Counter.incr a;
  Alcotest.(check int) "same counter under one name" 1 (Stats.Counter.value b)

let test_counter_listing () =
  let registry = Stats.Counter.Registry.create () in
  Stats.Counter.add (Stats.Counter.Registry.counter registry "b") 2;
  Stats.Counter.add (Stats.Counter.Registry.counter registry "a") 1;
  Alcotest.(check (list (pair string int))) "sorted by name" [ ("a", 1); ("b", 2) ]
    (Stats.Counter.Registry.to_list registry);
  Stats.Counter.Registry.reset registry;
  Alcotest.(check (list (pair string int))) "reset" [ ("a", 0); ("b", 0) ]
    (Stats.Counter.Registry.to_list registry)

(* Registry dumps must be deterministically ordered and byte-stable
   regardless of registration order, including under the prefixed merge
   the telemetry sampler uses. *)
let test_counter_dump () =
  let build names =
    let registry = Stats.Counter.Registry.create () in
    List.iteri
      (fun i name -> Stats.Counter.add (Stats.Counter.Registry.counter registry name) (i + 1))
      names;
    registry
  in
  let a = build [ "zeta"; "alpha"; "mid" ] in
  Alcotest.(check (list (pair string int))) "prefixed and sorted"
    [ ("server/alpha", 2); ("server/mid", 3); ("server/zeta", 1) ]
    (Stats.Counter.Registry.dump ~prefix:"server/" a);
  Alcotest.(check (list (pair string int))) "no prefix = to_list"
    (Stats.Counter.Registry.to_list a)
    (Stats.Counter.Registry.dump a);
  (* same counters registered in a different order dump identically *)
  let b = build [ "mid"; "zeta"; "alpha" ] in
  Stats.Counter.Registry.reset a;
  Stats.Counter.Registry.reset b;
  List.iter
    (fun name ->
      Stats.Counter.add (Stats.Counter.Registry.counter a name) 7;
      Stats.Counter.add (Stats.Counter.Registry.counter b name) 7)
    [ "alpha"; "mid"; "zeta" ];
  Alcotest.(check (list (pair string int))) "registration order irrelevant"
    (Stats.Counter.Registry.dump ~prefix:"x/" a)
    (Stats.Counter.Registry.dump ~prefix:"x/" b)

let test_welford () =
  let w = Stats.Welford.create () in
  Alcotest.(check int) "empty count" 0 (Stats.Welford.count w);
  Alcotest.(check (float 0.)) "empty mean" 0. (Stats.Welford.mean w);
  List.iter (Stats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Welford.count w);
  Alcotest.(check (float 1e-9)) "mean" 5. (Stats.Welford.mean w);
  Alcotest.(check (float 1e-9)) "variance (unbiased)" (32. /. 7.) (Stats.Welford.variance w);
  Alcotest.(check (float 1e-9)) "min" 2. (Stats.Welford.min w);
  Alcotest.(check (float 1e-9)) "max" 9. (Stats.Welford.max w);
  Alcotest.(check (float 1e-9)) "total" 40. (Stats.Welford.total w)

let test_welford_merge () =
  let all = Stats.Welford.create () in
  let left = Stats.Welford.create () in
  let right = Stats.Welford.create () in
  let xs = [ 1.; 2.; 3.; 10.; 20.; 30.; 4.; 5. ] in
  List.iteri
    (fun i x ->
      Stats.Welford.add all x;
      Stats.Welford.add (if i mod 2 = 0 then left else right) x)
    xs;
  let merged = Stats.Welford.merge left right in
  Alcotest.(check int) "count" (Stats.Welford.count all) (Stats.Welford.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Stats.Welford.mean all) (Stats.Welford.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Stats.Welford.variance all)
    (Stats.Welford.variance merged);
  (* merging with empty is the identity *)
  let with_empty = Stats.Welford.merge all (Stats.Welford.create ()) in
  Alcotest.(check (float 1e-9)) "merge with empty" (Stats.Welford.mean all)
    (Stats.Welford.mean with_empty)

let test_histogram_quantiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i /. 1000.)
  done;
  Alcotest.(check int) "count" 1000 (Stats.Histogram.count h);
  let p50 = Stats.Histogram.quantile h 0.5 in
  (* log-bucketed: allow the bucket-width relative error *)
  if p50 < 0.4 || p50 > 0.62 then Alcotest.failf "p50 out of tolerance: %g" p50;
  let p99 = Stats.Histogram.quantile h 0.99 in
  if p99 < 0.85 || p99 > 1.25 then Alcotest.failf "p99 out of tolerance: %g" p99;
  Alcotest.(check (float 0.002)) "mean exact (tracked separately)" 0.5005 (Stats.Histogram.mean h)

let test_histogram_edges () =
  let h = Stats.Histogram.create () in
  Alcotest.(check (float 0.)) "quantile of empty" 0. (Stats.Histogram.quantile h 0.5);
  Stats.Histogram.add h 0.;
  Stats.Histogram.add h 1e-9;
  Alcotest.(check int) "zeros counted" 2 (Stats.Histogram.count h);
  Alcotest.(check bool) "underflow quantile small" true (Stats.Histogram.quantile h 0.9 <= 1e-6);
  Stats.Histogram.add h 1e12;
  Alcotest.(check bool) "overflow finite estimate" true (Stats.Histogram.quantile h 1.0 < infinity);
  Alcotest.check_raises "bad quantile" (Invalid_argument "Histogram.quantile: q must be in [0, 1]")
    (fun () -> ignore (Stats.Histogram.quantile h 1.5))

let test_histogram_merge () =
  let samples_a = [ 0.001; 0.02; 0.3 ] and samples_b = [ 0.004; 4.; 1e-9 ] in
  let direct = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add direct) (samples_a @ samples_b);
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add a) samples_a;
  List.iter (Stats.Histogram.add b) samples_b;
  Stats.Histogram.merge a b;
  Alcotest.(check int) "count" (Stats.Histogram.count direct) (Stats.Histogram.count a);
  Alcotest.(check (float 1e-12)) "exact sum carried" (Stats.Histogram.sum direct)
    (Stats.Histogram.sum a);
  Alcotest.(check (float 1e-12)) "p90 matches direct fill" (Stats.Histogram.quantile direct 0.9)
    (Stats.Histogram.quantile a 0.9);
  Alcotest.(check int) "source untouched" (List.length samples_b) (Stats.Histogram.count b);
  (* layout compatibility is checked, not silently mangled *)
  let narrow = Stats.Histogram.create ~buckets:16 () in
  Alcotest.check_raises "incompatible layouts"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts") (fun () ->
      Stats.Histogram.merge a narrow);
  let coarse = Stats.Histogram.create ~growth:1.5 () in
  Alcotest.check_raises "incompatible growth"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts") (fun () ->
      Stats.Histogram.merge a coarse)

let test_histogram_bucket_edges () =
  (* exact bucket edges x = least and x = least * growth^k are where the
     log-ratio rounding can misplace samples; pin the half-open layout *)
  let least = 1e-6 and growth = 1.2 and buckets = 128 in
  let h = Stats.Histogram.create ~least ~growth ~buckets () in
  Alcotest.(check int) "just below least -> underflow" 0
    (Stats.Histogram.bucket_index h (least *. (1. -. 1e-12)));
  Alcotest.(check int) "x = least -> first bucket" 1 (Stats.Histogram.bucket_index h least);
  List.iter
    (fun k ->
      let x = least *. Float.pow growth (float_of_int k) in
      Alcotest.(check int)
        (Printf.sprintf "x = least*growth^%d opens bucket %d" k (k + 1))
        (k + 1) (Stats.Histogram.bucket_index h x);
      Alcotest.(check int)
        (Printf.sprintf "just below the growth^%d edge stays in bucket %d" k k)
        k
        (Stats.Histogram.bucket_index h (x *. (1. -. 1e-12))))
    [ 1; 2; 5; 17; 64; 127 ];
  Alcotest.(check int) "top edge -> overflow" (buckets + 1)
    (Stats.Histogram.bucket_index h (least *. Float.pow growth (float_of_int buckets)))

let test_histogram_overflow_quantile () =
  (* all mass in the overflow bucket: the quantile is interpolated inside
     it, never a synthetic bound past the data *)
  let least = 1e-6 and growth = 1.2 and buckets = 128 in
  let h = Stats.Histogram.create ~least ~growth ~buckets () in
  let overflow_lo = least *. Float.pow growth (float_of_int buckets) in
  for _ = 1 to 5 do
    Stats.Histogram.add h 1e12
  done;
  List.iter
    (fun q ->
      let v = Stats.Histogram.quantile h q in
      if v < overflow_lo -. 1e-12 || v > overflow_lo *. growth +. 1e-12 then
        Alcotest.failf "q=%g estimate %g outside the overflow bucket [%g, %g]" q v overflow_lo
          (overflow_lo *. growth))
    [ 0.5; 0.99; 1.0 ]

let test_histogram_summary () =
  (* empty: every summary field is zero *)
  let empty = Stats.Histogram.summary (Stats.Histogram.create ()) in
  Alcotest.(check int) "empty count" 0 empty.Stats.Histogram.s_count;
  Alcotest.(check (float 0.)) "empty sum" 0. empty.Stats.Histogram.s_sum;
  Alcotest.(check (float 0.)) "empty p99.9" 0. empty.Stats.Histogram.s_p999;
  let h = Stats.Histogram.create () in
  for i = 1 to 10_000 do
    Stats.Histogram.add h (float_of_int i /. 10_000.)
  done;
  let s = Stats.Histogram.summary h in
  Alcotest.(check int) "count" 10_000 s.Stats.Histogram.s_count;
  Alcotest.(check (float 1e-6)) "sum exact" 5000.5 s.Stats.Histogram.s_sum;
  Alcotest.(check (float 1e-6)) "mean = sum/count" (Stats.Histogram.mean h)
    s.Stats.Histogram.s_mean;
  (* quantile fields agree with the direct calls, and p99.9 resolves the
     tail p99 cannot: it must sit strictly above p99 here *)
  List.iter
    (fun (name, q, field) ->
      Alcotest.(check (float 1e-12)) name (Stats.Histogram.quantile h q) field)
    [
      ("p50", 0.5, s.Stats.Histogram.s_p50);
      ("p90", 0.9, s.Stats.Histogram.s_p90);
      ("p99", 0.99, s.Stats.Histogram.s_p99);
      ("p99.9", 0.999, s.Stats.Histogram.s_p999);
    ];
  if not (s.Stats.Histogram.s_p999 > s.Stats.Histogram.s_p99) then
    Alcotest.failf "p99.9 (%g) should exceed p99 (%g)" s.Stats.Histogram.s_p999
      s.Stats.Histogram.s_p99;
  if s.Stats.Histogram.s_p999 < 0.8 || s.Stats.Histogram.s_p999 > 1.25 then
    Alcotest.failf "p99.9 out of tolerance: %g" s.Stats.Histogram.s_p999

let test_histogram_summary_bucket_edges () =
  (* a thousand samples pinned on one exact bucket edge: the p99.9 walk
     must interpolate inside that bucket, not fall off an edge *)
  let least = 1e-6 and growth = 1.2 and buckets = 128 in
  let h = Stats.Histogram.create ~least ~growth ~buckets () in
  let edge = least *. Float.pow growth 17. in
  for _ = 1 to 1000 do
    Stats.Histogram.add h edge
  done;
  let s = Stats.Histogram.summary h in
  let lo = edge and hi = edge *. growth in
  List.iter
    (fun (name, v) ->
      if v < lo -. 1e-18 || v > hi +. 1e-18 then
        Alcotest.failf "%s estimate %g outside the edge bucket [%g, %g]" name v lo hi)
    [ ("p50", s.Stats.Histogram.s_p50); ("p99", s.Stats.Histogram.s_p99);
      ("p99.9", s.Stats.Histogram.s_p999) ];
  Alcotest.(check (float 1e-9)) "sum is exact at the edge" (1000. *. edge)
    s.Stats.Histogram.s_sum;
  (* a couple of stragglers in the overflow bucket are what p99.9 exists
     to see: p99 stays in the edge bucket while p99.9 reaches the
     overflow (with 1000 edge samples + 2 outliers the 0.999 target index
     is 1001.998, inside the overflow bucket) *)
  Stats.Histogram.add h 1e9;
  Stats.Histogram.add h 1e9;
  let s' = Stats.Histogram.summary h in
  if not (s'.Stats.Histogram.s_p99 <= hi +. 1e-18) then
    Alcotest.failf "p99 moved to %g; should stay within the edge bucket" s'.Stats.Histogram.s_p99;
  if not (s'.Stats.Histogram.s_p999 > hi) then
    Alcotest.failf "p99.9 (%g) should land past the edge bucket with 2/1002 outliers"
      s'.Stats.Histogram.s_p999

let test_series () =
  let s = Stats.Series.create ~label:"load" in
  Stats.Series.add s ~x:0. ~y:1.;
  Stats.Series.add s ~x:10. ~y:0.1;
  Alcotest.(check int) "length" 2 (Stats.Series.length s);
  Alcotest.(check (option (float 1e-9))) "y_at hit" (Some 0.1) (Stats.Series.y_at s ~x:10.);
  Alcotest.(check (option (float 1e-9))) "y_at miss" None (Stats.Series.y_at s ~x:5.);
  let doubled = Stats.Series.map_y s ~f:(fun y -> 2. *. y) in
  Alcotest.(check (option (float 1e-9))) "map_y" (Some 0.2) (Stats.Series.y_at doubled ~x:10.);
  Alcotest.(check string) "label preserved" "load" (Stats.Series.label doubled)

(* Sampler-style append patterns: one point per fixed-width window, many
   short windows, empty windows recorded as zero, and a window boundary
   landing exactly on an event instant (duplicate x appended twice). *)
let test_series_window_appends () =
  let s = Stats.Series.create ~label:"msgs/s" in
  let n = 200 in
  let interval = 0.5 in
  for k = 1 to n do
    let y = if k mod 3 = 0 then 0. else float_of_int (k mod 7) in
    Stats.Series.add s ~x:(float_of_int k *. interval) ~y
  done;
  Alcotest.(check int) "one point per window" n (Stats.Series.length s);
  let xs = List.map fst (Stats.Series.points s) in
  let sorted = List.sort compare xs in
  Alcotest.(check (list (float 1e-12))) "insertion order is time order" sorted xs;
  Alcotest.(check (option (float 1e-12))) "empty window recorded, not skipped" (Some 0.)
    (Stats.Series.y_at s ~x:(3. *. interval));
  Alcotest.(check (option (float 1e-12))) "boundary window value exact" (Some (float_of_int (199 mod 7)))
    (Stats.Series.y_at s ~x:(199. *. interval));
  (* a sample replayed at an already-recorded boundary instant appends
     rather than overwrites; y_at reports the first *)
  Stats.Series.add s ~x:(100. *. interval) ~y:42.;
  Alcotest.(check int) "duplicate x retained" (n + 1) (Stats.Series.length s);
  Alcotest.(check (option (float 1e-12))) "first recording wins lookup"
    (Some (float_of_int (100 mod 7)))
    (Stats.Series.y_at s ~x:(100. *. interval))

let test_table_many_windows () =
  let mk label f =
    let s = Stats.Series.create ~label in
    for k = 1 to 50 do
      (* the second series misses every 5th window, as a gauge that was
         not sampled during an outage would *)
      if not (f && k mod 5 = 0) then Stats.Series.add s ~x:(float_of_int k) ~y:(float_of_int k)
    done;
    s
  in
  let table =
    Stats.Table.of_series ~x_label:"t" ~x_format:(Printf.sprintf "%g")
      ~y_format:(Printf.sprintf "%g")
      [ mk "full" false; mk "gappy" true ]
  in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' table) in
  Alcotest.(check int) "header + rule + one row per window" 52 (List.length lines)

let test_table_render () =
  let table =
    Stats.Table.render ~header:[ "a"; "bbb" ] ~rows:[ [ "1"; "2" ]; [ "10"; "20" ]; [ "x" ] ]
  in
  let lines = String.split_on_char '\n' table in
  Alcotest.(check int) "header + rule + 3 rows" 5 (List.length lines);
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "rule dashes" true (String.for_all (fun c -> c = '-' || c = ' ') rule);
    Alcotest.(check bool) "header contains both columns" true
      (String.length header >= String.length "a   bbb")
  | _ -> Alcotest.fail "too few lines");
  (* ragged row padded, no trailing spaces *)
  List.iter
    (fun line ->
      if String.length line > 0 && line.[String.length line - 1] = ' ' then
        Alcotest.failf "trailing space in %S" line)
    lines

let test_table_of_series () =
  let a = Stats.Series.create ~label:"a" in
  let b = Stats.Series.create ~label:"b" in
  Stats.Series.add a ~x:1. ~y:10.;
  Stats.Series.add a ~x:2. ~y:20.;
  Stats.Series.add b ~x:2. ~y:200.;
  let table =
    Stats.Table.of_series ~x_label:"x" ~x_format:(Printf.sprintf "%g")
      ~y_format:(Printf.sprintf "%g") [ a; b ]
  in
  let lines = String.split_on_char '\n' table in
  Alcotest.(check int) "x union rows" 4 (List.length lines);
  Alcotest.(check bool) "missing cell left empty" true
    (String.length (List.nth lines 2) < String.length (List.nth lines 3) + 5)

let () =
  Alcotest.run "stats"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "identity" `Quick test_counter_identity;
          Alcotest.test_case "listing" `Quick test_counter_listing;
          Alcotest.test_case "dump determinism" `Quick test_counter_dump;
        ] );
      ( "welford",
        [
          Alcotest.test_case "moments" `Quick test_welford;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "edges" `Quick test_histogram_edges;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "overflow quantile" `Quick test_histogram_overflow_quantile;
          Alcotest.test_case "summary" `Quick test_histogram_summary;
          Alcotest.test_case "summary bucket edges" `Quick test_histogram_summary_bucket_edges;
        ] );
      ( "series+table",
        [
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "series window appends" `Quick test_series_window_appends;
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table of series" `Quick test_table_of_series;
          Alcotest.test_case "table many windows" `Quick test_table_many_windows;
        ] );
    ]
