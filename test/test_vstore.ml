(* Unit tests for the storage substrate: versioned store with history,
   the namespace, and the persistent lease record (WAL). *)

open Simtime

let sec = Time.of_sec
let file = Vstore.File_id.of_int

let test_store_versions () =
  let store = Vstore.Store.create () in
  Alcotest.(check int) "implicit initial version" 0
    (Vstore.Version.to_int (Vstore.Store.current store (file 0)));
  let v1 = Vstore.Store.commit store (file 0) ~at:(sec 1.) in
  Alcotest.(check int) "first commit" 1 (Vstore.Version.to_int v1);
  let v2 = Vstore.Store.commit store (file 0) ~at:(sec 2.) in
  Alcotest.(check int) "second commit" 2 (Vstore.Version.to_int v2);
  Alcotest.(check int) "current" 2 (Vstore.Version.to_int (Vstore.Store.current store (file 0)));
  Alcotest.(check int) "files independent" 0
    (Vstore.Version.to_int (Vstore.Store.current store (file 1)));
  Alcotest.(check int) "commit count" 2 (Vstore.Store.commits store)

let test_store_rejects_time_travel () =
  let store = Vstore.Store.create () in
  ignore (Vstore.Store.commit store (file 0) ~at:(sec 5.));
  Alcotest.check_raises "non-monotone commit"
    (Invalid_argument "Store.commit: commit instants must be non-decreasing") (fun () ->
      ignore (Vstore.Store.commit store (file 0) ~at:(sec 4.)))

let test_current_at () =
  let store = Vstore.Store.create () in
  ignore (Vstore.Store.commit store (file 0) ~at:(sec 10.));
  ignore (Vstore.Store.commit store (file 0) ~at:(sec 20.));
  let at t = Vstore.Version.to_int (Vstore.Store.current_at store (file 0) (sec t)) in
  Alcotest.(check int) "before any write" 0 (at 5.);
  Alcotest.(check int) "at first commit instant" 1 (at 10.);
  Alcotest.(check int) "between" 1 (at 15.);
  Alcotest.(check int) "after second" 2 (at 25.)

let test_was_current_during () =
  let store = Vstore.Store.create () in
  ignore (Vstore.Store.commit store (file 0) ~at:(sec 10.));
  let check version start finish =
    Vstore.Store.was_current_during store (file 0) (Vstore.Version.of_int version)
      ~start:(sec start) ~finish:(sec finish)
  in
  Alcotest.(check bool) "v0 before the write" true (check 0 1. 5.);
  Alcotest.(check bool) "v0 spanning the write" true (check 0 5. 15.);
  Alcotest.(check bool) "v0 after the write is stale" false (check 0 11. 12.);
  Alcotest.(check bool) "v1 after the write" true (check 1 11. 12.);
  Alcotest.(check bool) "v1 before the write did not exist" false (check 1 1. 5.);
  Alcotest.(check bool) "v1 window touching commit" true (check 1 5. 10.);
  Alcotest.(check bool) "unknown version" false (check 7 0. 100.);
  Alcotest.check_raises "empty window"
    (Invalid_argument "Store.was_current_during: empty window") (fun () ->
      ignore (check 0 5. 4.))

let test_staleness_at () =
  let store = Vstore.Store.create () in
  ignore (Vstore.Store.commit store (file 0) ~at:(sec 10.));
  (match Vstore.Store.staleness_at store (file 0) (Vstore.Version.of_int 0) ~at:(sec 14.) with
  | Some age -> Alcotest.(check (float 1e-9)) "4 s stale" 4. (Time.Span.to_sec age)
  | None -> Alcotest.fail "expected staleness");
  Alcotest.(check bool) "current version not stale" true
    (Vstore.Store.staleness_at store (file 0) (Vstore.Version.of_int 1) ~at:(sec 14.) = None);
  Alcotest.(check bool) "old version not yet superseded" true
    (Vstore.Store.staleness_at store (file 0) (Vstore.Version.of_int 0) ~at:(sec 9.) = None)

(* --- Namespace -------------------------------------------------------- *)

let fresh_allocator () =
  let next = ref 100 in
  fun () ->
    let id = Vstore.File_id.of_int !next in
    incr next;
    id

let test_namespace_basics () =
  let ns = Vstore.Namespace.create ~fresh_id:(fresh_allocator ()) in
  let dir = Vstore.Namespace.make_directory ns "/bin" in
  Alcotest.(check bool) "directory id stable" true
    (Vstore.File_id.equal dir (Vstore.Namespace.make_directory ns "/bin"));
  Alcotest.(check bool) "directory_id" true
    (Vstore.Namespace.directory_id ns "/bin" = Some dir);
  Alcotest.(check bool) "missing directory" true (Vstore.Namespace.directory_id ns "/nope" = None);
  Vstore.Namespace.bind ns ~dir:"/bin" ~name:"latex" (file 1);
  Alcotest.(check bool) "lookup hit" true
    (Vstore.Namespace.lookup ns ~dir:"/bin" ~name:"latex" = Some (file 1));
  Alcotest.(check bool) "lookup miss" true
    (Vstore.Namespace.lookup ns ~dir:"/bin" ~name:"vi" = None);
  Alcotest.(check bool) "lookup in missing dir" true
    (Vstore.Namespace.lookup ns ~dir:"/nope" ~name:"x" = None)

let test_namespace_rename () =
  let ns = Vstore.Namespace.create ~fresh_id:(fresh_allocator ()) in
  ignore (Vstore.Namespace.make_directory ns "/bin");
  Vstore.Namespace.bind ns ~dir:"/bin" ~name:"old" (file 1);
  Vstore.Namespace.rename ns ~dir:"/bin" ~old_name:"old" ~new_name:"new";
  Alcotest.(check bool) "old gone" true (Vstore.Namespace.lookup ns ~dir:"/bin" ~name:"old" = None);
  Alcotest.(check bool) "new present" true
    (Vstore.Namespace.lookup ns ~dir:"/bin" ~name:"new" = Some (file 1));
  Alcotest.check_raises "rename missing" Not_found (fun () ->
      Vstore.Namespace.rename ns ~dir:"/bin" ~old_name:"ghost" ~new_name:"x")

let test_namespace_unbind_and_listing () =
  let ns = Vstore.Namespace.create ~fresh_id:(fresh_allocator ()) in
  ignore (Vstore.Namespace.make_directory ns "/etc");
  Vstore.Namespace.bind ns ~dir:"/etc" ~name:"b" (file 2);
  Vstore.Namespace.bind ns ~dir:"/etc" ~name:"a" (file 1);
  Alcotest.(check (list string)) "sorted listing" [ "a"; "b" ]
    (List.map fst (Vstore.Namespace.bindings ns ~dir:"/etc"));
  Vstore.Namespace.unbind ns ~dir:"/etc" ~name:"a";
  Alcotest.(check (list string)) "after unbind" [ "b" ]
    (List.map fst (Vstore.Namespace.bindings ns ~dir:"/etc"));
  Alcotest.check_raises "unbind missing" Not_found (fun () ->
      Vstore.Namespace.unbind ns ~dir:"/etc" ~name:"a");
  Alcotest.check_raises "bindings of missing dir" Not_found (fun () ->
      ignore (Vstore.Namespace.bindings ns ~dir:"/none"))

(* --- WAL -------------------------------------------------------------- *)

let span = Time.Span.of_sec

let test_wal_max_term () =
  let wal = Vstore.Wal.create Vstore.Wal.Max_term_only in
  Alcotest.(check (float 1e-9)) "empty max term" 0. (Time.Span.to_sec (Vstore.Wal.max_term wal));
  Vstore.Wal.record_grant wal (file 0) ~term:(span 10.) ~expiry:(sec 20.);
  Vstore.Wal.record_grant wal (file 1) ~term:(span 5.) ~expiry:(sec 30.);
  Alcotest.(check (float 1e-9)) "max term retained" 10.
    (Time.Span.to_sec (Vstore.Wal.max_term wal));
  (* recovery wait is the max term regardless of the file *)
  Alcotest.(check (float 1e-9)) "wait for any file" 10.
    (Time.Span.to_sec (Vstore.Wal.recovery_wait_for wal (file 9) ~recovered_at:(sec 100.)));
  (* only term increases cost I/O *)
  Alcotest.(check int) "one persistent update" 1 (Vstore.Wal.io_records wal);
  Vstore.Wal.record_grant wal (file 2) ~term:(span 30.) ~expiry:(sec 40.);
  Alcotest.(check int) "second update on a longer term" 2 (Vstore.Wal.io_records wal)

let test_wal_detailed () =
  let wal = Vstore.Wal.create Vstore.Wal.Detailed in
  Vstore.Wal.record_grant wal (file 0) ~term:(span 10.) ~expiry:(sec 12.);
  Vstore.Wal.record_grant wal (file 1) ~term:(span 10.) ~expiry:(sec 30.);
  let wait f at = Time.Span.to_sec (Vstore.Wal.recovery_wait_for wal (file f) ~recovered_at:(sec at)) in
  Alcotest.(check (float 1e-9)) "residual lease" 7. (wait 0 5.);
  Alcotest.(check (float 1e-9)) "already expired" 0. (wait 0 20.);
  Alcotest.(check (float 1e-9)) "unknown file" 0. (wait 5 5.);
  Alcotest.(check (float 1e-9)) "per-file" 25. (wait 1 5.);
  (* stale expiry never shortens the record *)
  Vstore.Wal.record_grant wal (file 1) ~term:(span 1.) ~expiry:(sec 6.);
  Alcotest.(check (float 1e-9)) "expiry monotone per file" 25. (wait 1 5.);
  Alcotest.(check bool) "detailed mode costs more io" true (Vstore.Wal.io_records wal >= 2)

let () =
  Alcotest.run "vstore"
    [
      ( "store",
        [
          Alcotest.test_case "versions" `Quick test_store_versions;
          Alcotest.test_case "monotone commits" `Quick test_store_rejects_time_travel;
          Alcotest.test_case "current_at" `Quick test_current_at;
          Alcotest.test_case "was_current_during" `Quick test_was_current_during;
          Alcotest.test_case "staleness_at" `Quick test_staleness_at;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "basics" `Quick test_namespace_basics;
          Alcotest.test_case "rename" `Quick test_namespace_rename;
          Alcotest.test_case "unbind + listing" `Quick test_namespace_unbind_and_listing;
        ] );
      ( "wal",
        [
          Alcotest.test_case "max-term mode" `Quick test_wal_max_term;
          Alcotest.test_case "detailed mode" `Quick test_wal_detailed;
        ] );
    ]
