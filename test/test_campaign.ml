(* Campaign harness: seeded generation must be deterministic and
   prefix-stable, full campaign reports byte-identical, generated fault
   specs must round-trip through the shared parser, and the server's
   write-queue table must drain back to empty (the queued-entry leak). *)

open Simtime

let commands scheds = List.map Fault_campaign.Schedule.to_command scheds

let test_generation_deterministic () =
  let a = commands (Fault_campaign.Gen.schedules ~seed:42 ~n:6) in
  let b = commands (Fault_campaign.Gen.schedules ~seed:42 ~n:6) in
  Alcotest.(check (list string)) "same seed, same schedules" a b;
  let c = commands (Fault_campaign.Gen.schedules ~seed:43 ~n:6) in
  Alcotest.(check bool) "different seed differs" false (a = c)

let test_generation_prefix_stable () =
  let six = commands (Fault_campaign.Gen.schedules ~seed:42 ~n:6) in
  let three = commands (Fault_campaign.Gen.schedules ~seed:42 ~n:3) in
  Alcotest.(check (list string)) "schedule i independent of n" three
    (List.filteri (fun i _ -> i < 3) six)

let test_pinned_seed_schedule () =
  (* pins the whole derivation chain: splitmix splits, draw order, fault
     grammar and number formatting *)
  match Fault_campaign.Gen.schedules ~seed:1 ~n:1 with
  | [ s ] ->
    Alcotest.(check string) "seed 1, schedule 0"
      "leases-sim -p leases -t 10 -n 5 -d 47 -s -6894164319213084917 -w bursty --loss \
       0.1593918509 --fault 'crash-client=3,9.076349,23.339903' --fault \
       'client-step=2,7.921407,9.840989' --fault 'server-drift=33.956426,-0.529099612097' \
       --fault 'server-drift=41.337524,0'"
      (Fault_campaign.Schedule.to_command s)
  | _ -> Alcotest.fail "expected exactly one schedule"

let test_fault_specs_round_trip () =
  List.iter
    (fun s ->
      List.iter
        (fun f ->
          let spec = Leases.Sim.fault_to_spec f in
          match Leases.Sim.fault_of_spec spec with
          | Ok f' -> Alcotest.(check string) ("round-trip " ^ spec) spec (Leases.Sim.fault_to_spec f')
          | Error why -> Alcotest.fail (Printf.sprintf "spec %S does not parse: %s" spec why))
        s.Fault_campaign.Schedule.faults)
    (Fault_campaign.Gen.schedules ~seed:42 ~n:10)

let test_shard_indexed_clock_fault_specs () =
  let parses spec expect =
    match Leases.Sim.fault_of_spec spec with
    | Ok f -> Alcotest.(check string) ("parse " ^ spec) expect (Leases.Sim.fault_to_spec f)
    | Error why -> Alcotest.fail (Printf.sprintf "spec %S does not parse: %s" spec why)
  in
  (* two-argument legacy form is shard 0 and prints back without the index *)
  parses "server-drift=40,-0.5" "server-drift=40,-0.5";
  parses "server-step=12.5,2" "server-step=12.5,2";
  (* three-argument form carries the shard and round-trips with it *)
  parses "server-drift=2,40,-0.5" "server-drift=2,40,-0.5";
  parses "server-step=3,12.5,-2" "server-step=3,12.5,-2";
  (match Leases.Sim.fault_of_spec "server-drift=2,40,-0.5" with
  | Ok (Leases.Sim.Server_drift { shard; _ }) -> Alcotest.(check int) "shard index" 2 shard
  | _ -> Alcotest.fail "three-argument server-drift must carry its shard");
  (* garbage times are a parse error, not an escaping exception *)
  List.iter
    (fun spec ->
      match Leases.Sim.fault_of_spec spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S must be rejected" spec)
    [ "server-drift=nan,0.5"; "server-step=1e300,2"; "crash-server=nan,5" ]

let test_campaign_report_byte_identical () =
  let report () =
    Trace.Json.to_string
      (Fault_campaign.Harness.to_json
         (Fault_campaign.Harness.run ~shrink:false ~seed:5 ~schedules:2 ()))
  in
  let a = report () in
  Alcotest.(check string) "same seed, same bytes" a (report ())

let test_sharded_schedules_generated () =
  (* ~25% of schedules shard the namespace; each sharded schedule carries a
     shard-failover fault and reproduces via --shards *)
  let scheds = Fault_campaign.Gen.schedules ~seed:7 ~n:20 in
  let sharded = List.filter (fun s -> s.Fault_campaign.Schedule.n_shards > 1) scheds in
  Alcotest.(check bool) "some schedules are sharded" true (sharded <> []);
  List.iter
    (fun s ->
      let cmd = Fault_campaign.Schedule.to_command s in
      let has sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length cmd && (String.sub cmd i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("command reproduces sharding: " ^ cmd) true (has "--shards");
      Alcotest.(check bool) ("failover fault present: " ^ cmd) true (has "crash-shard="))
    sharded

let test_unsafe_budget_small_vs_allowance () =
  Alcotest.(check bool) "unsafe budget under the 100 ms skew allowance" true
    (Fault_campaign.Gen.unsafe_skew_budget_s < 0.1)

(* The queued-write leak: a file's queue entry must disappear once its
   last queued write commits, so [Server.snapshot] reports zero queued
   files after every burst drains. *)

let run_write_burst ops =
  let engine = Engine.create () in
  let liveness = Host.Liveness.create () in
  let partition = Netsim.Partition.create () in
  let net =
    Netsim.Net.create engine ~liveness ~partition ~prop_delay:(Time.Span.of_ms 0.5)
      ~proc_delay:(Time.Span.of_ms 1.) ()
  in
  let n_clients = 3 in
  let server_host = Host.Host_id.of_int 0 in
  let client_hosts = List.init n_clients (fun i -> Host.Host_id.of_int (i + 1)) in
  let store = Vstore.Store.create () in
  let config = Leases.Config.default in
  let server =
    Leases.Server.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness ~host:server_host
      ~clients:client_hosts ~store ~config ()
  in
  let clients =
    Array.of_list
      (List.map
         (fun host ->
           Leases.Client.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness ~host
             ~server:server_host ~config ())
         client_hosts)
  in
  let completed = ref 0 in
  List.iter
    (fun (at_ms, client, file) ->
      ignore
        (Engine.schedule_at engine
           (Time.of_sec (float_of_int at_ms /. 1000.))
           (fun () ->
             Leases.Client.write clients.(client) (Vstore.File_id.of_int file) ~k:(fun _ ->
                 incr completed))))
    ops;
  Engine.run engine;
  (server, !completed)

let queued_drains_to_zero =
  QCheck.Test.make ~name:"queued table empty after write bursts drain" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 25)
        (triple (int_range 1 5_000) (int_range 0 2) (int_range 0 3)))
    (fun ops ->
      let server, completed = run_write_burst ops in
      let snap = Leases.Server.snapshot server in
      completed = List.length ops
      && snap.Leases.Server.queued_files = 0
      && snap.Leases.Server.queued_writes = 0
      && snap.Leases.Server.pending_writes = 0)

let () =
  Alcotest.run "campaign"
    [
      ( "generation",
        [
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "prefix stable" `Quick test_generation_prefix_stable;
          Alcotest.test_case "pinned seed" `Quick test_pinned_seed_schedule;
          Alcotest.test_case "fault specs round-trip" `Quick test_fault_specs_round_trip;
          Alcotest.test_case "shard-indexed clock faults" `Quick test_shard_indexed_clock_fault_specs;
          Alcotest.test_case "sharded schedules generated" `Quick test_sharded_schedules_generated;
          Alcotest.test_case "unsafe budget bounded" `Quick test_unsafe_budget_small_vs_allowance;
        ] );
      ( "harness",
        [ Alcotest.test_case "report byte-identical" `Slow test_campaign_report_byte_identical ] );
      ("server", [ QCheck_alcotest.to_alcotest queued_drains_to_zero ]);
    ]
