#!/bin/sh
# Perf-regression gate: re-run the end-to-end client sweep and compare
# sim-s/wall-s at every sweep point against the committed baseline
# (scripts/perf_baseline.json).  Fails — printing the worst regressing
# sweep point — when any point drops below TOLERANCE x baseline.  The
# same run records the K-shard split deployment's domain sweep and holds
# it to MIN_SPEEDUP x at 4 domains — enforced only on hosts with at
# least 4 cores (fewer cores time-slice the domains; the measurement is
# recorded with a skip notice instead of a spurious failure).
#
# Usage: perf_gate.sh [--full] [--tolerance RATIO] [--min-speedup RATIO]
#                     [--compare BENCH.json]
#
#   --full               run the full-size sweep instead of --quick
#   --tolerance RATIO    min acceptable current/baseline ratio (default 0.75,
#                        i.e. fail on a >25% regression)
#   --min-speedup RATIO  min acceptable domains=4 / domains=1 rate ratio
#                        (default 2.5; only enforced on >= 4 cores)
#   --compare PATH       gate an existing BENCH_core.json instead of running
#
# Regenerate the baseline after an intentional perf change with:
#   dune exec bin/bench_core.exe -- --quick --clients 1,100,1000,10000 \
#     -o scripts/perf_baseline.json
set -eu

cd "$(dirname "$0")/.."

BASELINE=scripts/perf_baseline.json
TOLERANCE=0.75
MIN_SPEEDUP=2.5
QUICK=--quick
COMPARE=

while [ $# -gt 0 ]; do
  case "$1" in
    --full) QUICK= ;;
    --tolerance) TOLERANCE="$2"; shift ;;
    --min-speedup) MIN_SPEEDUP="$2"; shift ;;
    --compare) COMPARE="$2"; shift ;;
    *) echo "perf_gate.sh: unknown argument $1" >&2; exit 2 ;;
  esac
  shift
done

[ -f "$BASELINE" ] || { echo "perf_gate.sh: missing $BASELINE" >&2; exit 2; }

if [ -n "$COMPARE" ]; then
  exec dune exec bin/bench_core.exe -- \
    --gate "$BASELINE" --tolerance "$TOLERANCE" --min-speedup "$MIN_SPEEDUP" \
    --compare "$COMPARE"
fi

# Match the baseline's sweep points; the run both benches and gates in one
# invocation (bench_core exits non-zero when either gate fails).
OUT=$(mktemp /tmp/BENCH_core.gate.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

dune exec bin/bench_core.exe -- $QUICK --clients 1,100,1000,10000 \
  -o "$OUT" --gate "$BASELINE" --tolerance "$TOLERANCE" --min-speedup "$MIN_SPEEDUP"
