#!/bin/sh
# Repo gate: build, full test suite, then a quick perf-harness run so the
# bench entry point cannot rot.  Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== perf gate (bench_core --quick vs scripts/perf_baseline.json) =="
# Quick-mode end-to-end sweeps are noisy, so CI gates at a looser
# tolerance than the 0.75 default a manual perf_gate.sh run uses — but
# after the O(N^2) grant-path fix the headroom at every sweep point is
# large enough to tighten the floor to 0.25x baseline.  On failure the
# gate prints the worst regressing sweep point.
sh scripts/perf_gate.sh --tolerance 0.25

echo "== traced smoke sim + invariant checker =="
# A short traced lease run must replay through the checker with zero
# violations; tracedump exits non-zero on any.
dune exec bin/simulate.exe -- -p leases -t 10 -n 4 -d 60 \
  --trace /tmp/leases_smoke.jsonl > /dev/null
dune exec bin/tracedump.exe -- /tmp/leases_smoke.jsonl --check-only

echo "== telemetry residual gate =="
# A pinned steady-state no-fault run sampled every 30 s: the measured
# consistency load past the 300 s cold-cache warm-up must agree with the
# Section 3.1 analytic prediction within 25 % (the seeded run sits near
# +1.5 %; see EXPERIMENTS.md for the tolerance derivation), and a
# telemetry-enabled traced run must stay checker-clean — sampling may not
# perturb the protocol.
dune exec bin/simulate.exe -- -p leases -t 10 -n 1 -d 1500 -s 7 \
  --telemetry 30 --telemetry-out /tmp/leases_telemetry.json \
  --trace /tmp/leases_telemetry_smoke.jsonl > /dev/null
dune exec bin/tracedump.exe -- /tmp/leases_telemetry_smoke.jsonl --check-only
dune exec bin/telemetry_view.exe -- /tmp/leases_telemetry.json --gate-residual 0.25

echo "== latency conservation gate =="
# A seeded lossy run with the critical-path analyzer attached: every
# completed operation's attributed phases must sum to its client-observed
# latency within 1e-9 s (they telescope by construction, so any gap is an
# attribution bug), and the leases-latency/1 export must replay through
# leases-latency with the same verdict.
dune exec bin/simulate.exe -- -p leases -t 10 -n 6 -d 120 -s 3 --loss 0.05 \
  --latency --latency-out /tmp/leases_latency.json > /dev/null
dune exec bin/latency_view.exe -- /tmp/leases_latency.json --gate-conserve -q

echo "== sharded smoke sim + invariant checker =="
# A four-shard deployment with a shard failover mid-run must replay
# through the multi-server checker with zero violations; --map-seed
# mirrors the run's -s so tracedump rebuilds the same shard map.
dune exec bin/simulate.exe -- -p leases -t 10 -n 6 -d 120 -s 3 --shards 4 \
  --fault crash-shard=1,40,8 --trace /tmp/leases_shard_smoke.jsonl > /dev/null
dune exec bin/tracedump.exe -- /tmp/leases_shard_smoke.jsonl \
  --shards 4 --map-seed 3 --check-only

echo "== fault campaign (25 seeded schedules) =="
# A pinned random fault campaign with the register oracle and the trace
# invariant checker armed on every schedule; leases-campaign exits
# non-zero if any schedule finds a safety violation, after shrinking it
# to a minimal reproducer command line.
dune exec bin/campaign.exe -- --seed 1 --schedules 25 --shrink

echo "== all checks passed =="
