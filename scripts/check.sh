#!/bin/sh
# Repo gate: build, full test suite, then a quick perf-harness run so the
# bench entry point cannot rot.  Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench_core --quick =="
dune exec bin/bench_core.exe -- --quick -o /tmp/BENCH_core.quick.json

echo "== all checks passed =="
