#!/bin/sh
# Repo gate: build, full test suite, then a quick perf-harness run so the
# bench entry point cannot rot.  Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench_core --quick =="
dune exec bin/bench_core.exe -- --quick -o /tmp/BENCH_core.quick.json

echo "== traced smoke sim + invariant checker =="
# A short traced lease run must replay through the checker with zero
# violations; tracedump exits non-zero on any.
dune exec bin/simulate.exe -- -p leases -t 10 -n 4 -d 60 \
  --trace /tmp/leases_smoke.jsonl > /dev/null
dune exec bin/tracedump.exe -- /tmp/leases_smoke.jsonl --check-only

echo "== fault campaign (25 seeded schedules) =="
# A pinned random fault campaign with the register oracle and the trace
# invariant checker armed on every schedule; leases-campaign exits
# non-zero if any schedule finds a safety violation, after shrinking it
# to a minimal reproducer command line.
dune exec bin/campaign.exe -- --seed 1 --schedules 25 --shrink

echo "== all checks passed =="
