(* Benchmark harness.

   Two parts:

   1. Bechamel micro/meso benchmarks — one per reproduced table/figure (the
      cost of regenerating each result) plus micro-benchmarks of the hot
      substrate paths (event queue, PRNG, one simulated virtual minute of
      each consistency protocol).

   2. The experiment outputs themselves, regenerated in quick mode so a
      single `dune exec bench/main.exe` prints every row/series the paper
      reports.  `bin/figures.exe` (no flags) produces the full-length
      versions. *)

open Bechamel
open Toolkit

let span_sec = Simtime.Time.Span.of_sec

(* --- micro: substrate hot paths ------------------------------------- *)

let test_event_queue =
  Test.make ~name:"event-queue push+pop x1000"
    (Staged.stage (fun () ->
         let q = Simtime.Event_queue.create () in
         for i = 0 to 999 do
           ignore (Simtime.Event_queue.push q ~at:(Simtime.Time.of_us ((i * 7919) mod 100_000)) i)
         done;
         let rec drain () = match Simtime.Event_queue.pop q with Some _ -> drain () | None -> () in
         drain ()))

let test_event_queue_cancel_heavy =
  Test.make ~name:"event-queue cancel+push x1000"
    (Staged.stage (fun () ->
         ignore
           (Experiments.Corebench.event_queue_cancel_heavy ~timer:Unix.gettimeofday ~ops:1000)))

let test_lease_table =
  Test.make ~name:"lease-table churn x1000"
    (Staged.stage (fun () ->
         ignore (Experiments.Corebench.lease_table_churn ~timer:Unix.gettimeofday ~ops:1000)))

let test_prng =
  Test.make ~name:"splitmix64 x1000"
    (Staged.stage
       (let rng = Prng.Splitmix.create ~seed:99L in
        fun () ->
          for _ = 1 to 1000 do
            ignore (Prng.Splitmix.next_int64 rng)
          done))

(* --- meso: one simulated virtual minute per protocol ----------------- *)

let v_minute =
  lazy (Experiments.V_trace.poisson ~duration:(span_sec 60.) ()).Experiments.V_trace.trace

let lease_minute term =
  fun () ->
    ignore
      (Experiments.Runner.run_lease (Experiments.Runner.lease_setup ~term ())
         (Lazy.force v_minute))

let test_lease_sim =
  Test.make ~name:"sim: leases 10s, 60 virtual s"
    (Staged.stage (lease_minute (Analytic.Model.Finite 10.)))

let test_zero_sim =
  Test.make ~name:"sim: zero term, 60 virtual s"
    (Staged.stage (lease_minute (Analytic.Model.Finite 0.)))

let test_callback_sim =
  Test.make ~name:"sim: callbacks, 60 virtual s"
    (Staged.stage (fun () ->
         ignore
           (Baselines.Callback.run Baselines.Callback.default_setup ~trace:(Lazy.force v_minute))))

let test_ttl_sim =
  Test.make ~name:"sim: TTL hints, 60 virtual s"
    (Staged.stage (fun () ->
         ignore
           (Baselines.Ttl_hints.run Baselines.Ttl_hints.default_setup ~trace:(Lazy.force v_minute))))

(* --- one per table/figure: the cost of regenerating it --------------- *)

let quick = span_sec 300.

let test_fig1 =
  Test.make ~name:"experiment: Figure 1"
    (Staged.stage (fun () -> ignore (Experiments.Fig1.run ~duration:quick ())))

let test_fig2 =
  Test.make ~name:"experiment: Figure 2"
    (Staged.stage (fun () -> ignore (Experiments.Fig2.run ~duration:quick ())))

let test_fig3 =
  Test.make ~name:"experiment: Figure 3"
    (Staged.stage (fun () -> ignore (Experiments.Fig3.run ~duration:quick ())))

let test_table2 =
  Test.make ~name:"experiment: Table 2"
    (Staged.stage (fun () -> ignore (Experiments.Table2.run ~duration:quick ())))

let test_claims =
  Test.make ~name:"experiment: in-text claims"
    (Staged.stage (fun () -> ignore (Experiments.Claims.run ~duration:quick ())))

let test_faults =
  Test.make ~name:"experiment: fault drills"
    (Staged.stage (fun () -> ignore (Experiments.Faults.run ())))

let test_writeback =
  Test.make ~name:"experiment: write-back extension"
    (Staged.stage (fun () -> ignore (Experiments.Writeback.run ~duration:quick ())))

let test_future =
  Test.make ~name:"experiment: future systems"
    (Staged.stage (fun () -> ignore (Experiments.Future.run ~duration:quick ())))

let suite =
  Test.make_grouped ~name:"leases"
    [
      test_event_queue;
      test_event_queue_cancel_heavy;
      test_lease_table;
      test_prng;
      test_zero_sim;
      test_lease_sim;
      test_callback_sim;
      test_ttl_sim;
      test_fig1;
      test_fig2;
      test_fig3;
      test_table2;
      test_claims;
      test_faults;
      test_writeback;
      test_future;
    ]

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances suite in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  print_endline "benchmark                                     ns/run";
  print_endline "--------------------------------------------  ------------";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (t :: _) -> Printf.printf "%-44s  %12.0f\n" name t
         | Some [] | None -> Printf.printf "%-44s  (no estimate)\n" name)

let run_throughput () =
  print_endline "clients  sim-s    wall-s   sim-s/wall-s";
  print_endline "-------  -------  -------  ------------";
  List.iter
    (fun n_clients ->
      let duration = Experiments.Corebench.sweep_duration_s ~base_s:200. n_clients in
      let r =
        Experiments.Corebench.lease_throughput ~timer:Unix.gettimeofday ~n_clients
          ~duration:(span_sec duration)
      in
      Printf.printf "%-7d  %7.0f  %7.2f  %12.0f\n" r.Experiments.Corebench.n_clients
        r.Experiments.Corebench.sim_seconds r.Experiments.Corebench.wall_seconds
        r.Experiments.Corebench.sim_sec_per_wall_sec)
    Experiments.Corebench.client_counts

let () =
  print_endline "=== Bechamel benchmarks ===";
  run_bechamel ();
  print_newline ();
  print_endline
    "=== Simulation-core throughput (bin/bench_core.exe records this as BENCH_core.json) ===";
  run_throughput ();
  print_newline ();
  print_endline "=== Paper tables and figures (quick mode; bin/figures.exe runs full-length) ===";
  let section title = Printf.printf "\n== %s ==\n\n" title in
  section "Table 2";
  print_endline (Experiments.Table2.run ~duration:(span_sec 2_000.) ()).Experiments.Table2.table;
  section "Figure 1";
  let f1 = Experiments.Fig1.run ~duration:(span_sec 1_000.) () in
  print_endline f1.Experiments.Fig1.table;
  print_endline f1.Experiments.Fig1.knee_note;
  section "Figure 2";
  let f2 = Experiments.Fig2.run ~duration:(span_sec 1_000.) () in
  print_endline f2.Experiments.Fig2.table;
  print_endline f2.Experiments.Fig2.spread_note;
  section "Figure 3";
  let f3 = Experiments.Fig3.run ~duration:(span_sec 1_000.) () in
  print_endline f3.Experiments.Fig3.table;
  print_endline f3.Experiments.Fig3.note;
  section "In-text claims";
  print_endline (Experiments.Claims.run ~duration:(span_sec 1_000.) ()).Experiments.Claims.table;
  section "Section 4 ablations";
  print_endline
    (Experiments.Ablations.run ~duration:(span_sec 500.) ()).Experiments.Ablations.table;
  section "Section 5 fault drills";
  List.iter
    (fun s ->
      Printf.printf "[%s] %s\n"
        (if s.Experiments.Faults.ok then "ok" else "FAIL")
        s.Experiments.Faults.name;
      List.iter (Printf.printf "    %s\n") s.Experiments.Faults.lines)
    (Experiments.Faults.run ()).Experiments.Faults.scenarios;
  section "Section 6 baselines";
  print_endline
    (Experiments.Baselines_cmp.run ~duration:(span_sec 500.) ()).Experiments.Baselines_cmp.table;
  section "Section 3.3 future systems";
  print_endline (Experiments.Future.run ~duration:(span_sec 500.) ()).Experiments.Future.table;
  section "Write-back extension";
  print_endline (Experiments.Writeback.run ~duration:(span_sec 400.) ()).Experiments.Writeback.table;
  section "Lease granularity";
  print_endline
    (Experiments.Granularity.run ~duration:(span_sec 400.) ()).Experiments.Granularity.table;
  section "Adaptive terms";
  print_endline (Experiments.Adaptive.run ~duration:(span_sec 400.) ()).Experiments.Adaptive.table
