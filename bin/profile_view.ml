(* Render a leases-profile/1 report: top-K hotspot table on stdout, or
   conversion to the speedscope / chrome-tracing flamegraph formats. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let main file top format out =
  match read_file file with
  | exception Sys_error reason -> `Error (false, reason)
  | text -> (
    match Profile.Report.of_json_string text with
    | Error why -> `Error (false, Printf.sprintf "%s: %s" file why)
    | Ok report -> (
      match format with
      | None ->
        print_string (Profile.Report.hotspot_table ~top report);
        `Ok ()
      | Some fmt -> (
        let render =
          match fmt with
          | "speedscope" -> Some (Profile.Report.to_speedscope ~name:file)
          | "chrome" -> Some Profile.Report.to_chrome
          | _ -> None
        in
        match render with
        | None -> `Error (false, Printf.sprintf "unknown format %S (speedscope|chrome)" fmt)
        | Some render -> (
          match out with
          | None -> `Error (false, "--format requires --out FILE")
          | Some path ->
            let oc = open_out path in
            output_string oc (render report);
            close_out oc;
            Printf.printf "wrote %s\n" path;
            `Ok ()))))

let file_arg =
  let doc = "leases-profile/1 report, as written by leases-sim --profile-out." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"REPORT" ~doc)

let top_arg =
  let doc = "Rows in the hotspot table." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)

let format_arg =
  let doc =
    "Convert instead of printing the table: speedscope (speedscope.app flamegraph) or chrome \
     (chrome://tracing / Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "format" ] ~docv:"FMT" ~doc)

let out_arg =
  let doc = "Output path for the converted profile." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "Inspect and convert leases-profile/1 reports." in
  Cmd.v
    (Cmd.info "leases-profile-view" ~doc)
    Term.(ret (const main $ file_arg $ top_arg $ format_arg $ out_arg))

let () = exit (Cmd.eval cmd)
