(* Seeded fault-campaign fuzzer: derive N random fault schedules from one
   seed, run each through the simulator with the register oracle and the
   trace invariant checker armed, classify the outcomes, and shrink any
   safety violation to a minimal reproducer.  Exits non-zero when any
   schedule finds a safety violation so CI can gate on a campaign run. *)

open Cmdliner

let main seed schedules shrink json =
  let summary = Fault_campaign.Harness.run ~shrink ~seed ~schedules () in
  if json then print_string (Trace.Json.to_string (Fault_campaign.Harness.to_json summary) ^ "\n")
  else Format.printf "%a" Fault_campaign.Harness.pp summary;
  if Fault_campaign.Harness.has_safety summary then
    `Error (false, Printf.sprintf "%d schedule(s) violated safety" summary.Fault_campaign.Harness.safety)
  else `Ok ()

let seed =
  Arg.(value & opt int 1
       & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Campaign seed; the whole run is a pure function \
                                                 of it.")

let schedules =
  Arg.(value & opt int 25
       & info [ "schedules" ] ~docv:"N" ~doc:"Number of fault schedules to generate and run.")

let shrink =
  Arg.(value & flag
       & info [ "shrink" ] ~doc:"Minimise each safety violation to a small reproducer before \
                                 reporting it.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the full campaign report as JSON on stdout.")

let cmd =
  let doc = "Run a seeded randomized fault campaign against the lease protocol." in
  Cmd.v (Cmd.info "leases-campaign" ~doc)
    Term.(ret (const main $ seed $ schedules $ shrink $ json))

let () = exit (Cmd.eval cmd)
