(* Emit BENCH_core.json: the simulation-core performance trajectory.

   Records the event-queue and lease-table microbenches and end-to-end
   simulated-seconds-per-wallclock-second across a client-count sweep
   (default N = 1, 10, 100, 1000, 10000; override with --clients), so
   future PRs touching the hot paths are held to these numbers.  Each
   sweep row carries hotspot attribution from one profiled run.  A
   domain_sweep section records the K-shard split deployment's rate at
   10k clients across 1/2/4/8 OCaml domains, with the host's core count.
   With --gate BASELINE the run doubles as a perf-regression gate: the
   fresh document's end_to_end sweep is compared against the baseline's
   and the exit status is non-zero on a regression past --tolerance; the
   domain_sweep is additionally held to --min-speedup at 4 domains when
   the host has the cores to express it.  The JSON format is documented
   in DESIGN.md sections 4, 12 and 15. *)

let timer = Unix.gettimeofday

let span_sec = Simtime.Time.Span.of_sec

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v =
  (* JSON has no infinities; benchmarks never legitimately produce them. *)
  if Float.is_finite v then Printf.sprintf "%.6g" v else "0"

let micro_fields (m : Experiments.Corebench.micro) =
  Printf.sprintf "\"ops\": %d, \"elapsed_s\": %s, \"ops_per_sec\": %s" m.ops (fnum m.elapsed_s)
    (fnum m.ops_per_sec)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Check [current_text]'s domain_sweep section against the minimum
   parallel speedup at 4 domains.  Enforcement is conditional on the
   recording host's core count — a 1-core machine time-slices the domains
   and cannot exhibit the speedup, so the gate records the measurement and
   passes with a notice rather than failing on hardware it cannot test. *)
let run_speedup_gate ~min_speedup ~current_text =
  match Experiments.Corebench.speedup_gate ~min_speedup ~at_domains:4 ~current:current_text with
  | Error e ->
    Printf.eprintf "leases-bench-core: speedup gate: %s\n" e;
    1
  | Ok None ->
    Printf.printf "speedup gate: SKIP (no domain_sweep section in this document)\n";
    0
  | Ok (Some s) ->
    Printf.printf "speedup gate: domains=1 %10.0f  domains=%d %10.0f  speedup %.2fx\n"
      s.Experiments.Corebench.su_base s.Experiments.Corebench.su_domains
      s.Experiments.Corebench.su_parallel s.Experiments.Corebench.su_speedup;
    if not s.Experiments.Corebench.su_enforced then begin
      Printf.printf
        "speedup gate: SKIP (host has %d core%s, fewer than the %d the gate needs; recorded but \
         not enforced)\n"
        s.Experiments.Corebench.su_host_cores
        (if s.Experiments.Corebench.su_host_cores = 1 then "" else "s")
        s.Experiments.Corebench.su_domains;
      0
    end
    else if s.Experiments.Corebench.su_pass then begin
      Printf.printf "speedup gate: PASS (%.2fx >= required %.2fx at %d domains)\n"
        s.Experiments.Corebench.su_speedup min_speedup s.Experiments.Corebench.su_domains;
      0
    end
    else begin
      Printf.eprintf "speedup gate: FAIL — %.2fx < required %.2fx at %d domains on %d cores\n"
        s.Experiments.Corebench.su_speedup min_speedup s.Experiments.Corebench.su_domains
        s.Experiments.Corebench.su_host_cores;
      1
    end

(* Compare [current_text]'s end_to_end sweep against the baseline file;
   prints every common point and, on failure, the worst regressing one. *)
let run_gate ~tolerance ~baseline ~current_text =
  match read_file baseline with
  | exception Sys_error reason ->
    Printf.eprintf "leases-bench-core: cannot read baseline %s: %s\n" baseline reason;
    1
  | baseline_text -> (
    match
      Experiments.Corebench.gate_compare ~tolerance ~baseline:baseline_text ~current:current_text
    with
    | Error e ->
      Printf.eprintf "leases-bench-core: gate: %s\n" e;
      1
    | Ok g ->
      List.iter
        (fun (p : Experiments.Corebench.gate_point) ->
          Printf.printf "gate: N=%-6d baseline %10.0f  current %10.0f  ratio %.3f\n" p.p_clients
            p.p_baseline p.p_current p.p_ratio)
        g.Experiments.Corebench.g_points;
      if g.Experiments.Corebench.g_pass then begin
        Printf.printf "gate: PASS (every sweep point within tolerance %.2f of %s)\n" tolerance
          baseline;
        0
      end
      else begin
        (match g.Experiments.Corebench.g_worst with
        | Some w ->
          Printf.eprintf
            "gate: FAIL — worst sweep point N=%d: %.0f -> %.0f sim-s/wall-s (ratio %.3f < \
             tolerance %.2f)\n"
            w.Experiments.Corebench.p_clients w.Experiments.Corebench.p_baseline
            w.Experiments.Corebench.p_current w.Experiments.Corebench.p_ratio tolerance
        | None -> Printf.eprintf "gate: FAIL\n");
        1
      end)

let run_benches quick clients =
  let micro_ops = if quick then 100_000 else 1_000_000 in
  let base_s = if quick then 200. else 1_000. in
  let push_pop = Experiments.Corebench.event_queue_push_pop ~timer ~ops:micro_ops in
  let cancel_heavy = Experiments.Corebench.event_queue_cancel_heavy ~timer ~ops:micro_ops in
  let lease_table = Experiments.Corebench.lease_table_churn ~timer ~ops:micro_ops in
  let trace_sink = Experiments.Corebench.trace_emit ~timer ~ops:micro_ops in
  let classify = Experiments.Corebench.classify_bench ~timer ~ops:micro_ops in
  let telemetry = Experiments.Corebench.telemetry_bench ~timer ~ops:micro_ops in
  let dispatch = Experiments.Corebench.engine_dispatch ~timer ~ops:micro_ops in
  (* The N=1 run lasts a couple of milliseconds, which makes a single shot
     hostage to heap warmup (the first run after the microbenches measures
     GC growth, not the simulator).  Warm up once per N and report the best
     of three measured runs — the stable estimate of what the core can do.
     Hotspot attribution comes from one extra profiled run so the measured
     rate stays free of accounting overhead. *)
  let end_to_end =
    List.map
      (fun n_clients ->
        let duration = span_sec (Experiments.Corebench.sweep_duration_s ~base_s n_clients) in
        ignore (Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration);
        let best a b =
          if a.Experiments.Corebench.sim_sec_per_wall_sec
             >= b.Experiments.Corebench.sim_sec_per_wall_sec
          then a
          else b
        in
        let r0 = Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration in
        let r1 = Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration in
        let r2 = Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration in
        let hotspots = Experiments.Corebench.lease_hotspots ~timer ~n_clients ~duration in
        (best r0 (best r1 r2), hotspots))
      clients
  in
  (* The parallel-deployment sweep: the same 10k-client workload through
     the K-shard split deployment at 8 shards, on 1, 2, 4 and 8 domains.
     The recording host's core count rides along so the speedup gate can
     tell a perf regression from hardware that cannot parallelize. *)
  let host_cores = Domain.recommended_domain_count () in
  let split_clients = 10_000 in
  let domain_sweep =
    let duration = span_sec (Experiments.Corebench.sweep_duration_s ~base_s split_clients) in
    let point domains =
      Experiments.Corebench.split_throughput ~timer ~n_clients:split_clients
        ~n_shards:Experiments.Corebench.split_shards ~domains ~duration
    in
    List.map
      (fun domains ->
        ignore (point domains);
        let best a b =
          if a.Experiments.Corebench.d_sim_sec_per_wall_sec
             >= b.Experiments.Corebench.d_sim_sec_per_wall_sec
          then a
          else b
        in
        best (point domains) (best (point domains) (point domains)))
      Experiments.Corebench.domain_counts
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"leases-bench-core/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"event_queue\": {\n    \"push_pop\": { %s },\n"
       (micro_fields push_pop));
  Buffer.add_string buf
    (Printf.sprintf
       "    \"cancel_heavy\": { %s, \"live_target\": %d, \"max_occupied_slots\": %d }\n  },\n"
       (micro_fields cancel_heavy.Experiments.Corebench.g_micro)
       cancel_heavy.Experiments.Corebench.live_target
       cancel_heavy.Experiments.Corebench.max_slots);
  Buffer.add_string buf
    (Printf.sprintf "  \"lease_table\": { \"churn\": { %s } },\n" (micro_fields lease_table));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"trace_sink\": {\n    \"null\": { %s },\n    \"ring\": { %s, \"dropped\": %d }\n  },\n"
       (micro_fields trace_sink.Experiments.Corebench.null_sink)
       (micro_fields trace_sink.Experiments.Corebench.ring_sink)
       trace_sink.Experiments.Corebench.ring_dropped);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"msg_classify\": {\n    \"probe_disabled\": { %s },\n    \"probe_enabled\": { %s }\n\
       \  },\n"
       (micro_fields classify.Experiments.Corebench.classify_disabled)
       (micro_fields classify.Experiments.Corebench.classify_enabled));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"telemetry\": {\n    \"probe_disabled\": { %s },\n    \"probe_enabled\": { %s },\n\
       \    \"snapshot\": { %s }\n  },\n"
       (micro_fields telemetry.Experiments.Corebench.probe_disabled)
       (micro_fields telemetry.Experiments.Corebench.probe_enabled)
       (micro_fields telemetry.Experiments.Corebench.snapshot));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"engine_dispatch\": {\n    \"probe_disabled\": { %s },\n    \"probe_enabled\": { %s \
        }\n  },\n"
       (micro_fields dispatch.Experiments.Corebench.dispatch_disabled)
       (micro_fields dispatch.Experiments.Corebench.dispatch_enabled));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"domain_sweep\": {\n    \"n_clients\": %d, \"n_shards\": %d, \"host_cores\": %d,\n\
       \    \"points\": [\n"
       split_clients Experiments.Corebench.split_shards host_cores);
  List.iteri
    (fun i (r : Experiments.Corebench.domain_point) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      { \"domains\": %d, \"sim_seconds\": %s, \"wall_seconds\": %s, \
            \"sim_sec_per_wall_sec\": %s }%s\n"
           r.d_domains (fnum r.d_sim_seconds) (fnum r.d_wall_seconds)
           (fnum r.d_sim_sec_per_wall_sec)
           (if i = List.length domain_sweep - 1 then "" else ",")))
    domain_sweep;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf "  \"end_to_end\": [\n";
  List.iteri
    (fun i ((r : Experiments.Corebench.throughput), hotspots) ->
      let hs =
        List.map
          (fun (h : Experiments.Corebench.hotspot) ->
            Printf.sprintf "{ \"center\": \"%s\", \"wall_pct\": %s, \"hits\": %d }"
              (json_escape h.h_center) (fnum h.h_wall_pct) h.h_hits)
          (match hotspots with a :: b :: c :: _ -> [ a; b; c ] | short -> short)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"n_clients\": %d, \"sim_seconds\": %s, \"wall_seconds\": %s, \
            \"sim_sec_per_wall_sec\": %s,\n      \"hotspots\": [ %s ] }%s\n"
           r.n_clients (fnum r.sim_seconds) (fnum r.wall_seconds) (fnum r.sim_sec_per_wall_sec)
           (String.concat ", " hs)
           (if i = List.length end_to_end - 1 then "" else ",")))
    end_to_end;
  Buffer.add_string buf "  ]\n}\n";
  let report = Buffer.contents buf in
  Printf.printf
    "event queue : push+pop %.2f Mops/s; cancel-heavy %.2f Mops/s, peak %d slots for %d live\n"
    (push_pop.Experiments.Corebench.ops_per_sec /. 1e6)
    (cancel_heavy.Experiments.Corebench.g_micro.Experiments.Corebench.ops_per_sec /. 1e6)
    cancel_heavy.Experiments.Corebench.max_slots cancel_heavy.Experiments.Corebench.live_target;
  Printf.printf "lease table : churn %.2f Mops/s\n"
    (lease_table.Experiments.Corebench.ops_per_sec /. 1e6);
  Printf.printf "trace sink  : null %.2f Mops/s; ring %.2f Mops/s\n"
    (trace_sink.Experiments.Corebench.null_sink.Experiments.Corebench.ops_per_sec /. 1e6)
    (trace_sink.Experiments.Corebench.ring_sink.Experiments.Corebench.ops_per_sec /. 1e6);
  Printf.printf "msg classify: tracing off %.2f Mops/s, on %.2f Mops/s\n"
    (classify.Experiments.Corebench.classify_disabled.Experiments.Corebench.ops_per_sec /. 1e6)
    (classify.Experiments.Corebench.classify_enabled.Experiments.Corebench.ops_per_sec /. 1e6);
  Printf.printf
    "telemetry   : probe off %.2f Mops/s, on %.2f Mops/s; snapshot %.1f Kops/s\n"
    (telemetry.Experiments.Corebench.probe_disabled.Experiments.Corebench.ops_per_sec /. 1e6)
    (telemetry.Experiments.Corebench.probe_enabled.Experiments.Corebench.ops_per_sec /. 1e6)
    (telemetry.Experiments.Corebench.snapshot.Experiments.Corebench.ops_per_sec /. 1e3);
  Printf.printf "dispatch    : profiler off %.2f Mevents/s, on %.2f Mevents/s\n"
    (dispatch.Experiments.Corebench.dispatch_disabled.Experiments.Corebench.ops_per_sec /. 1e6)
    (dispatch.Experiments.Corebench.dispatch_enabled.Experiments.Corebench.ops_per_sec /. 1e6);
  List.iter
    (fun ((r : Experiments.Corebench.throughput), hotspots) ->
      let top =
        (* every center still holding >= 2% of the wall, hottest first, so
           a sweep line shows the whole cost distribution at a glance *)
        match
          List.filter
            (fun (h : Experiments.Corebench.hotspot) -> h.h_wall_pct >= 2.)
            hotspots
        with
        | [] -> ""
        | hot ->
          Printf.sprintf "  (%s)"
            (String.concat ", "
               (List.map
                  (fun (h : Experiments.Corebench.hotspot) ->
                    Printf.sprintf "%s %.0f%%" h.h_center h.h_wall_pct)
                  hot))
      in
      Printf.printf "end-to-end  : N=%-5d  %.0f sim-s in %.2f s  =  %.0f sim-s/s%s\n" r.n_clients
        r.sim_seconds r.wall_seconds r.sim_sec_per_wall_sec top)
    end_to_end;
  List.iter
    (fun (r : Experiments.Corebench.domain_point) ->
      Printf.printf
        "parallel    : N=%d/%d shards, domains=%d  %.0f sim-s in %.2f s  =  %.0f sim-s/s\n"
        split_clients Experiments.Corebench.split_shards r.d_domains r.d_sim_seconds
        r.d_wall_seconds r.d_sim_sec_per_wall_sec)
    domain_sweep;
  Printf.printf "parallel    : host cores %d\n" host_cores;
  report

let main quick out clients gate tolerance min_speedup compare =
  let full_gate ~baseline ~current_text =
    let sweep_status = run_gate ~tolerance ~baseline ~current_text in
    let speedup_status = run_speedup_gate ~min_speedup ~current_text in
    if sweep_status <> 0 then sweep_status else speedup_status
  in
  match compare with
  | Some current_path -> (
    (* Compare-only mode: no benches run; --gate names the baseline. *)
    match gate with
    | None ->
      Printf.eprintf "leases-bench-core: --compare requires --gate BASELINE\n";
      1
    | Some baseline -> (
      match read_file current_path with
      | exception Sys_error reason ->
        Printf.eprintf "leases-bench-core: cannot read %s: %s\n" current_path reason;
        1
      | current_text -> full_gate ~baseline ~current_text))
  | None -> (
    if clients = [] then begin
      Printf.eprintf "leases-bench-core: --clients needs at least one count\n";
      1
    end
    else if List.exists (fun n -> n < 1) clients then begin
      Printf.eprintf "leases-bench-core: client counts must be positive\n";
      1
    end
    else begin
      let report = run_benches quick clients in
      (match open_out out with
      | oc ->
        output_string oc report;
        close_out oc
      | exception Sys_error reason ->
        Printf.eprintf "leases-bench-core: cannot write %s: %s\n" out reason;
        exit 1);
      Printf.printf "wrote %s\n" (json_escape out);
      match gate with
      | None -> 0
      | Some baseline -> full_gate ~baseline ~current_text:report
    end)

open Cmdliner

let quick_arg =
  let doc = "Smaller op counts and shorter traces: noisier numbers, much faster." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let out_arg =
  let doc = "Output path for the JSON record." in
  Arg.(value & opt string "BENCH_core.json" & info [ "o"; "output" ] ~docv:"PATH" ~doc)

let clients_arg =
  let doc =
    "Comma-separated client counts for the end-to-end sweep.  Simulated duration scales down \
     past 100 clients so the event count stays roughly flat."
  in
  Arg.(
    value
    & opt (list int) Experiments.Corebench.client_counts
    & info [ "clients" ] ~docv:"N,N,..." ~doc)

let gate_arg =
  let doc =
    "Compare the end-to-end sweep against this baseline BENCH_core.json and exit non-zero when \
     any common sweep point regresses past the tolerance."
  in
  Arg.(value & opt (some string) None & info [ "gate" ] ~docv:"BASELINE" ~doc)

let tolerance_arg =
  let doc =
    "Minimum acceptable current/baseline ratio of sim-s per wall-s at every sweep point \
     (0.75 = fail on a >25% regression)."
  in
  Arg.(value & opt float 0.75 & info [ "tolerance" ] ~docv:"RATIO" ~doc)

let min_speedup_arg =
  let doc =
    "Minimum acceptable sim-s/wall-s speedup of --domains 4 over --domains 1 in the \
     domain_sweep section, enforced with --gate only when the recording host has at least 4 \
     cores (fewer cores time-slice the domains; the measurement is recorded but not gated)."
  in
  Arg.(value & opt float 2.5 & info [ "min-speedup" ] ~docv:"RATIO" ~doc)

let compare_arg =
  let doc =
    "Skip the benchmarks and gate this existing BENCH_core.json against the --gate baseline."
  in
  Arg.(value & opt (some string) None & info [ "compare" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "Benchmark the simulation-core hot paths and emit BENCH_core.json." in
  Cmd.v
    (Cmd.info "leases-bench-core" ~doc)
    Term.(
      const main $ quick_arg $ out_arg $ clients_arg $ gate_arg $ tolerance_arg $ min_speedup_arg
      $ compare_arg)

let () = exit (Cmd.eval' cmd)
