(* Emit BENCH_core.json: the simulation-core performance trajectory.

   Records the event-queue and lease-table microbenches and end-to-end
   simulated-seconds-per-wallclock-second at N = 1, 10, 100 clients, so
   future PRs touching the hot paths are held to these numbers.  The JSON
   format is documented in DESIGN.md section 4. *)

let timer = Unix.gettimeofday

let span_sec = Simtime.Time.Span.of_sec

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v =
  (* JSON has no infinities; benchmarks never legitimately produce them. *)
  if Float.is_finite v then Printf.sprintf "%.6g" v else "0"

let micro_fields (m : Experiments.Corebench.micro) =
  Printf.sprintf "\"ops\": %d, \"elapsed_s\": %s, \"ops_per_sec\": %s" m.ops (fnum m.elapsed_s)
    (fnum m.ops_per_sec)

let main quick out =
  let micro_ops = if quick then 100_000 else 1_000_000 in
  let duration = span_sec (if quick then 200. else 1_000.) in
  let push_pop = Experiments.Corebench.event_queue_push_pop ~timer ~ops:micro_ops in
  let cancel_heavy = Experiments.Corebench.event_queue_cancel_heavy ~timer ~ops:micro_ops in
  let lease_table = Experiments.Corebench.lease_table_churn ~timer ~ops:micro_ops in
  let trace_sink = Experiments.Corebench.trace_emit ~timer ~ops:micro_ops in
  let telemetry = Experiments.Corebench.telemetry_bench ~timer ~ops:micro_ops in
  (* The N=1 run lasts a couple of milliseconds, which makes a single shot
     hostage to heap warmup (the first run after the microbenches measures
     GC growth, not the simulator).  Warm up once per N and report the best
     of three measured runs — the stable estimate of what the core can do. *)
  let end_to_end =
    List.map
      (fun n_clients ->
        ignore (Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration);
        let best a b =
          if a.Experiments.Corebench.sim_sec_per_wall_sec
             >= b.Experiments.Corebench.sim_sec_per_wall_sec
          then a
          else b
        in
        let r0 = Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration in
        let r1 = Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration in
        let r2 = Experiments.Corebench.lease_throughput ~timer ~n_clients ~duration in
        best r0 (best r1 r2))
      Experiments.Corebench.client_counts
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"leases-bench-core/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"event_queue\": {\n    \"push_pop\": { %s },\n"
       (micro_fields push_pop));
  Buffer.add_string buf
    (Printf.sprintf
       "    \"cancel_heavy\": { %s, \"live_target\": %d, \"max_occupied_slots\": %d }\n  },\n"
       (micro_fields cancel_heavy.Experiments.Corebench.g_micro)
       cancel_heavy.Experiments.Corebench.live_target
       cancel_heavy.Experiments.Corebench.max_slots);
  Buffer.add_string buf
    (Printf.sprintf "  \"lease_table\": { \"churn\": { %s } },\n" (micro_fields lease_table));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"trace_sink\": {\n    \"null\": { %s },\n    \"ring\": { %s, \"dropped\": %d }\n  },\n"
       (micro_fields trace_sink.Experiments.Corebench.null_sink)
       (micro_fields trace_sink.Experiments.Corebench.ring_sink)
       trace_sink.Experiments.Corebench.ring_dropped);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"telemetry\": {\n    \"probe_disabled\": { %s },\n    \"probe_enabled\": { %s },\n\
       \    \"snapshot\": { %s }\n  },\n"
       (micro_fields telemetry.Experiments.Corebench.probe_disabled)
       (micro_fields telemetry.Experiments.Corebench.probe_enabled)
       (micro_fields telemetry.Experiments.Corebench.snapshot));
  Buffer.add_string buf "  \"end_to_end\": [\n";
  List.iteri
    (fun i (r : Experiments.Corebench.throughput) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"n_clients\": %d, \"sim_seconds\": %s, \"wall_seconds\": %s, \
            \"sim_sec_per_wall_sec\": %s }%s\n"
           r.n_clients (fnum r.sim_seconds) (fnum r.wall_seconds) (fnum r.sim_sec_per_wall_sec)
           (if i = List.length end_to_end - 1 then "" else ",")))
    end_to_end;
  Buffer.add_string buf "  ]\n}\n";
  (match open_out out with
  | oc ->
    output_string oc (Buffer.contents buf);
    close_out oc
  | exception Sys_error reason ->
    Printf.eprintf "leases-bench-core: cannot write %s: %s\n" out reason;
    exit 1);
  Printf.printf "wrote %s\n" (json_escape out);
  Printf.printf "event queue : push+pop %.2f Mops/s; cancel-heavy %.2f Mops/s, peak %d slots for %d live\n"
    (push_pop.Experiments.Corebench.ops_per_sec /. 1e6)
    (cancel_heavy.Experiments.Corebench.g_micro.Experiments.Corebench.ops_per_sec /. 1e6)
    cancel_heavy.Experiments.Corebench.max_slots cancel_heavy.Experiments.Corebench.live_target;
  Printf.printf "lease table : churn %.2f Mops/s\n"
    (lease_table.Experiments.Corebench.ops_per_sec /. 1e6);
  Printf.printf "trace sink  : null %.2f Mops/s; ring %.2f Mops/s\n"
    (trace_sink.Experiments.Corebench.null_sink.Experiments.Corebench.ops_per_sec /. 1e6)
    (trace_sink.Experiments.Corebench.ring_sink.Experiments.Corebench.ops_per_sec /. 1e6);
  Printf.printf
    "telemetry   : probe off %.2f Mops/s, on %.2f Mops/s; snapshot %.1f Kops/s\n"
    (telemetry.Experiments.Corebench.probe_disabled.Experiments.Corebench.ops_per_sec /. 1e6)
    (telemetry.Experiments.Corebench.probe_enabled.Experiments.Corebench.ops_per_sec /. 1e6)
    (telemetry.Experiments.Corebench.snapshot.Experiments.Corebench.ops_per_sec /. 1e3);
  List.iter
    (fun (r : Experiments.Corebench.throughput) ->
      Printf.printf "end-to-end  : N=%-3d  %.0f sim-s in %.2f s  =  %.0f sim-s/s\n" r.n_clients
        r.sim_seconds r.wall_seconds r.sim_sec_per_wall_sec)
    end_to_end

open Cmdliner

let quick_arg =
  let doc = "Smaller op counts and shorter traces: noisier numbers, much faster." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let out_arg =
  let doc = "Output path for the JSON record." in
  Arg.(value & opt string "BENCH_core.json" & info [ "o"; "output" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "Benchmark the simulation-core hot paths and emit BENCH_core.json." in
  Cmd.v (Cmd.info "leases-bench-core" ~doc) Term.(const main $ quick_arg $ out_arg)

let () = exit (Cmd.eval cmd)
