(* Emit a synthetic workload trace in the text format of Trace_io. *)

open Cmdliner

let main workload clients duration seed out =
  try
    let duration = Simtime.Time.Span.of_sec duration in
    let trace =
      match workload with
      | "poisson" ->
        (Experiments.V_trace.poisson ~seed ~clients ~duration ()).Experiments.V_trace.trace
      | "bursty" ->
        (Experiments.V_trace.bursty ~seed ~clients ~duration ()).Experiments.V_trace.trace
      | "shared-heavy" ->
        (Experiments.V_trace.shared_heavy ~seed ~clients ~duration ()).Experiments.V_trace.trace
      | other -> failwith (Printf.sprintf "unknown workload %S (poisson|bursty|shared-heavy)" other)
    in
    let text = Workload.Trace_io.print trace in
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.eprintf "%a@." Workload.Trace.pp_summary (Workload.Trace.summarize trace)
    | None -> print_string text);
    `Ok ()
  with Failure why | Sys_error why -> `Error (false, why)

let workload =
  Arg.(value & opt string "poisson"
       & info [ "w"; "workload" ] ~docv:"KIND" ~doc:"poisson, bursty or shared-heavy.")

let clients = Arg.(value & opt int 1 & info [ "n"; "clients" ] ~docv:"N" ~doc:"Client count.")

let duration =
  Arg.(value & opt float 600. & info [ "d"; "duration" ] ~docv:"SEC" ~doc:"Trace length in virtual seconds.")

let seed = Arg.(value & opt int64 1L & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let out =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file (default stdout).")

let cmd =
  let doc = "Generate synthetic V-system file-access traces." in
  Cmd.v (Cmd.info "leases-tracegen" ~doc)
    Term.(ret (const main $ workload $ clients $ duration $ seed $ out))

let () = exit (Cmd.eval cmd)
