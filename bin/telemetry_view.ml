(* Render a saved telemetry report (leases-sim --telemetry-out) in the
   terminal, and optionally gate on the steady-state residual. *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let main file gate_residual quiet =
  match Telemetry.Report.of_string (read_file file) with
  | Error why -> `Error (false, Printf.sprintf "%s: %s" file why)
  | Ok view ->
    if not quiet then Format.printf "%a" Telemetry.Report.pp_view view;
    let steady = view.Telemetry.Report.v_summary.Telemetry.Residual.steady_load_residual in
    (match gate_residual with
    | None -> `Ok ()
    | Some tolerance ->
      if Float.abs steady <= tolerance then begin
        if not quiet then
          Format.printf "residual gate: |%+.1f%%| within %.0f%%@." (100. *. steady)
            (100. *. tolerance);
        `Ok ()
      end
      else
        `Error
          ( false,
            Printf.sprintf
              "steady-state residual %+.1f%% exceeds the %.0f%% tolerance: measured \
               consistency load disagrees with the Section 3.1 model"
              (100. *. steady) (100. *. tolerance) ))
  | exception Sys_error why -> `Error (false, why)

let file =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"Telemetry JSON report written by leases-sim --telemetry-out.")

let gate_residual =
  Arg.(value & opt (some float) None
       & info [ "gate-residual" ] ~docv:"TOL"
           ~doc:"Exit non-zero unless the steady-state load residual's magnitude is at most \
                 $(docv) (a fraction, e.g. 0.25).")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the rendered report.")

let cmd =
  let doc = "Render a lease-simulation telemetry report with sparklines and residuals." in
  Cmd.v (Cmd.info "leases-telemetry" ~doc)
    Term.(ret (const main $ file $ gate_residual $ quiet))

let () = exit (Cmd.eval cmd)
