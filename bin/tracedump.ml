(* Decode a JSONL protocol trace, reconstruct lease lifecycles and write
   waits, and replay the invariant checker.  Exits non-zero when the
   checker finds violations so CI can gate on a traced run. *)

open Cmdliner

let read_events path =
  let ic = if path = "-" then stdin else open_in path in
  let events = ref [] in
  let bad = ref 0 in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then
         match Trace.Codec.decode line with
         | Ok ev -> events := ev :: !events
         | Error why ->
           incr bad;
           if !bad <= 5 then Printf.eprintf "tracedump: line %d: %s\n" !line_no why
     done
   with End_of_file -> ());
  if path <> "-" then close_in ic;
  if !bad > 0 then Printf.eprintf "tracedump: %d undecodable line(s) skipped\n" !bad;
  List.rev !events

let kind_counts events =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (ev : Trace.Event.t) ->
      let name = Trace.Event.kind_name ev.ev in
      Hashtbl.replace tbl name (1 + Option.value (Hashtbl.find_opt tbl name) ~default:0))
    events;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* --stats: per-kind count plus first/last timestamp, no lifecycle or
   checker replay — cheap enough for very large traces. *)
let rec print_stats events =
  let tbl : (string, int * float * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (ev : Trace.Event.t) ->
      let name = Trace.Event.kind_name ev.ev in
      let entry =
        match Hashtbl.find_opt tbl name with
        | None -> (1, ev.at, ev.at)
        | Some (n, first, last) -> (n + 1, Float.min first ev.at, Float.max last ev.at)
      in
      Hashtbl.replace tbl name entry)
    events;
  let rows = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  Printf.printf "== event stats (%d events, %d kinds) ==\n" (List.length events)
    (List.length rows);
  Printf.printf "%-20s %10s %14s %14s\n" "kind" "count" "first" "last";
  List.iter
    (fun (name, (n, first, last)) ->
      Printf.printf "%-20s %10d %14.6f %14.6f\n" name n first last)
    rows;
  print_message_stats events

(* Per-message-kind traffic: sends, deliveries, and drops split by cause.
   [sent <> delivered + dropped] only for messages still in flight when the
   trace ended (or from a crashed sender, which drops with no send). *)
and print_message_stats events =
  let tbl : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  let row kind =
    let name = Trace.Event.msg_kind_name kind in
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = Array.make 5 0 in
      Hashtbl.add tbl name r;
      r
  in
  let bump kind col = (row kind).(col) <- (row kind).(col) + 1 in
  List.iter
    (fun (ev : Trace.Event.t) ->
      match ev.ev with
      | Trace.Event.Net_send { kind; _ } -> bump kind 0
      | Trace.Event.Net_deliver { kind; _ } -> bump kind 1
      | Trace.Event.Net_drop { kind; cause; _ } ->
        bump kind
          (match cause with
          | Trace.Event.Loss -> 2
          | Trace.Event.Partition -> 3
          | Trace.Event.Down -> 4)
      | _ -> ())
    events;
  let rows = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  if rows <> [] then begin
    Printf.printf "\n== message stats (%d kinds) ==\n" (List.length rows);
    Printf.printf "%-18s %10s %10s %10s %10s %10s\n" "message" "sent" "delivered" "drop/loss"
      "drop/part" "drop/down";
    let totals = Array.make 5 0 in
    List.iter
      (fun (name, r) ->
        Array.iteri (fun i v -> totals.(i) <- totals.(i) + v) r;
        Printf.printf "%-18s %10d %10d %10d %10d %10d\n" name r.(0) r.(1) r.(2) r.(3) r.(4))
      rows;
    Printf.printf "%-18s %10d %10d %10d %10d %10d\n" "total" totals.(0) totals.(1) totals.(2)
      totals.(3) totals.(4)
  end

(* --stats --shards N: attribute each event to a shard — by file owner
   through the deterministic shard map when the event names a file, else
   by server host id (servers are hosts 0..N-1 under sharding) — and print
   the per-shard load, busiest first.  Client-host events with no file
   (crash/recover/clock on a client) stay unattributed. *)
let print_shard_stats events ~shards ~map_seed ~vnodes =
  let map = Shard.Shard_map.create ~vnodes ~seed:map_seed ~shards () in
  let by_file f = Some (Shard.Shard_map.owner map (Vstore.File_id.of_int f)) in
  let by_host h = if h >= 0 && h < shards then Some h else None in
  let totals = Array.make shards 0 in
  let grants = Array.make shards 0 in
  let commits = Array.make shards 0 in
  let net = Array.make shards 0 in
  let unattributed = ref 0 in
  List.iter
    (fun (ev : Trace.Event.t) ->
      let shard =
        match ev.ev with
        | Trace.Event.Lease_grant { file; _ }
        | Trace.Event.Lease_release { file; _ }
        | Trace.Event.Lease_expire { file; _ }
        | Trace.Event.Wait_begin { file; _ }
        | Trace.Event.Wait_expire { file; _ }
        | Trace.Event.Approval_request { file; _ }
        | Trace.Event.Approval_reply { file; _ }
        | Trace.Event.Commit { file; _ }
        | Trace.Event.Installed_cover { file; _ }
        | Trace.Event.Client_lease { file; _ }
        | Trace.Event.Cache_hit { file; _ }
        | Trace.Event.Cache_miss { file; _ }
        | Trace.Event.Cache_invalidate { file; _ } -> by_file file
        | Trace.Event.Net_send { src; dst; _ }
        | Trace.Event.Net_deliver { src; dst; _ }
        | Trace.Event.Net_drop { src; dst; _ } -> (
          match by_host src with Some s -> Some s | None -> by_host dst)
        | Trace.Event.Crash { host }
        | Trace.Event.Recover { host }
        | Trace.Event.Clock_drift { host; _ }
        | Trace.Event.Clock_step { host; _ } -> by_host host
        | Trace.Event.Heartbeat _ -> None
      in
      match shard with
      | None -> incr unattributed
      | Some s ->
        totals.(s) <- totals.(s) + 1;
        (match ev.ev with
        | Trace.Event.Lease_grant _ -> grants.(s) <- grants.(s) + 1
        | Trace.Event.Commit _ -> commits.(s) <- commits.(s) + 1
        | Trace.Event.Net_send _ | Trace.Event.Net_deliver _ | Trace.Event.Net_drop _ ->
          net.(s) <- net.(s) + 1
        | _ -> ()))
    events;
  let attributed = Array.fold_left ( + ) 0 totals in
  Printf.printf "\n== per-shard breakdown (%d shards, %d attributed, %d unattributed) ==\n" shards
    attributed !unattributed;
  Printf.printf "%-6s %10s %8s %10s %10s %10s\n" "shard" "events" "share" "grants" "commits" "net";
  List.init shards (fun s -> s)
  |> List.sort (fun a b -> compare (totals.(b), a) (totals.(a), b))
  |> List.iter (fun s ->
         let share =
           if attributed = 0 then 0. else 100. *. float_of_int totals.(s) /. float_of_int attributed
         in
         Printf.printf "%-6d %10d %7.1f%% %10d %10d %10d\n" s totals.(s) share grants.(s)
           commits.(s) net.(s))

let end_cause_name : Trace.Lifecycle.end_cause -> string = function
  | Active -> "active"
  | Released Approved -> "released/approved"
  | Released Writer_self -> "released/writer-self"
  | Expired -> "expired"
  | Commit_sweep -> "commit-sweep"
  | Regrant -> "regrant"
  | Server_crash -> "server-crash"

let opt_time = function None -> "never" | Some at -> Printf.sprintf "%.6f" at

let print_leases life limit =
  let leases = life.Trace.Lifecycle.leases in
  let total = List.length leases in
  Printf.printf "== lease lifecycles (%d) ==\n" total;
  Printf.printf "%-6s %-6s %12s %12s %8s %12s  %s\n" "file" "holder" "granted" "ended" "renewals"
    "expiry" "end";
  let shown = if limit > 0 && total > limit then limit else total in
  List.iteri
    (fun i (l : Trace.Lifecycle.lease) ->
      if i < shown then
        Printf.printf "%-6d %-6d %12.6f %12.6f %8d %12s  %s\n" l.file l.holder l.granted_at
          (Trace.Lifecycle.lease_end life l) l.renewals (opt_time l.last_expiry)
          (end_cause_name l.end_cause))
    leases;
  if shown < total then Printf.printf "... %d more (raise --limit to see them)\n" (total - shown)

let resolution_text = function
  | None -> "unresolved"
  | Some (Trace.Lifecycle.Res_approved at) -> Printf.sprintf "approved@%.6f" at
  | Some (Trace.Lifecycle.Res_expired at) -> Printf.sprintf "expired@%.6f" at

let print_waits life =
  let waits = life.Trace.Lifecycle.waits in
  Printf.printf "\n== write waits (%d) ==\n" (List.length waits);
  List.iter
    (fun (w : Trace.Lifecycle.wait) ->
      let waited =
        match (w.waited_s, w.committed_at) with
        | Some s, _ -> Printf.sprintf "waited %.6f s" s
        | None, Some at -> Printf.sprintf "committed@%.6f" at
        | None, None -> "never committed"
      in
      Printf.printf "write %d file %d by client %d @%.6f: %s%s\n" w.write w.w_file w.writer
        w.began_at waited
        (if w.by_expiry then " (by expiry)" else "");
      List.iter
        (fun (b : Trace.Lifecycle.blocker) ->
          Printf.printf "    blocked by client %d: %s\n" b.b_holder (resolution_text b.resolution))
        w.blockers)
    waits

let main path server limit no_lifecycle stats shards map_seed vnodes =
  try
    if shards < 1 then failwith "--shards must be at least 1";
    let events = read_events path in
    if events = [] then failwith (Printf.sprintf "no events decoded from %s" path);
    if stats then begin
      print_stats events;
      if shards > 1 then print_shard_stats events ~shards ~map_seed ~vnodes;
      `Ok ()
    end
    else begin
      Printf.printf "== events (%d) ==\n" (List.length events);
      List.iter (fun (k, n) -> Printf.printf "%-20s %d\n" k n) (kind_counts events);
      (* Lifecycle reconstruction assumes a single server; for sharded
         traces we go straight to the (multi-server) invariant checker. *)
      if shards > 1 then
        Printf.printf "\n(sharded trace: lifecycle tables skipped)\n"
      else begin
        let life = Trace.Lifecycle.build ~server events in
        if not no_lifecycle then begin
          Printf.printf "\n";
          print_leases life limit;
          print_waits life
        end
      end;
      Printf.printf "\n== invariants ==\n";
      let report =
        if shards > 1 then begin
          let map = Shard.Shard_map.create ~vnodes ~seed:map_seed ~shards () in
          Trace.Checker.check
            ~servers:(List.init shards Fun.id)
            ~owner:(fun f -> Shard.Shard_map.owner map (Vstore.File_id.of_int f))
            events
        end
        else Trace.Checker.check ~server events
      in
      Format.printf "%a@." Trace.Checker.pp_report report;
      if Trace.Checker.ok report then `Ok () else `Error (false, "invariant violations found")
    end
  with
  | Failure why | Sys_error why -> `Error (false, why)

let path =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"TRACE" ~doc:"JSONL trace written by leases-sim --trace ('-' for stdin).")

let server =
  Arg.(value & opt int 0 & info [ "server" ] ~docv:"HOST" ~doc:"Host id of the server (default 0).")

let limit =
  Arg.(value & opt int 25
       & info [ "limit" ] ~docv:"N" ~doc:"Lease-table rows to print; 0 means all.")

let no_lifecycle =
  Arg.(value & flag
       & info [ "check-only" ] ~doc:"Skip the lifecycle and wait tables; print counts and the \
                                     invariant verdict only.")

let stats =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print only per-event-kind counts with first/last timestamps; \
                                skip lifecycle reconstruction and the invariant checker.")

let shards =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Check a sharded trace (leases-sim --shards N): servers are hosts 0..N-1 and a \
                 server crash only sweeps the files its shard owns.  Skips the lifecycle \
                 tables, which assume a single server.")

let map_seed =
  Arg.(value & opt int64 1L
       & info [ "map-seed" ] ~docv:"SEED"
           ~doc:"Seed of the shard map; must match the --seed of the traced run (default 1).")

let vnodes =
  Arg.(value & opt int 64
       & info [ "vnodes" ] ~docv:"N"
           ~doc:"Virtual nodes per shard in the shard map; must match the traced run \
                 (default 64).")

let cmd =
  let doc = "Summarise a protocol trace and verify the lease safety invariants." in
  Cmd.v (Cmd.info "leases-tracedump" ~doc)
    Term.(ret (const main $ path $ server $ limit $ no_lifecycle $ stats $ shards $ map_seed
               $ vnodes))

let () = exit (Cmd.eval cmd)
