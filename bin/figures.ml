(* Regenerate every table and figure of the paper's evaluation.

   Each experiment prints the same rows/series the paper reports; the
   EXPERIMENTS.md file records these outputs against the paper's values. *)

let section title = Printf.printf "\n== %s ==\n\n" title

let duration_of_sec s = Simtime.Time.Span.of_sec s

let run_params () =
  section "Table 1/2 — model parameters (V system)";
  Format.printf "%a@." Analytic.Params.pp Analytic.Params.v_lan

let run_table2 quick =
  section "Table 2 — V file-caching parameters: target vs measured from the generated trace";
  let duration = duration_of_sec (if quick then 2_000. else 20_000.) in
  let r = Experiments.Table2.run ~duration () in
  print_endline r.Experiments.Table2.table

let run_fig1 quick =
  section "Figure 1 — relative server consistency load vs lease term";
  let duration = duration_of_sec (if quick then 1_000. else 10_000.) in
  let r = Experiments.Fig1.run ~duration () in
  print_endline r.Experiments.Fig1.table;
  print_newline ();
  print_endline r.Experiments.Fig1.knee_note

let run_fig2 quick =
  section "Figure 2 — delay added per operation vs lease term (V LAN)";
  let duration = duration_of_sec (if quick then 1_000. else 10_000.) in
  let r = Experiments.Fig2.run ~duration () in
  print_endline r.Experiments.Fig2.table;
  print_newline ();
  print_endline r.Experiments.Fig2.spread_note

let run_fig3 quick =
  section "Figure 3 — delay added per operation with a 100 ms round trip";
  let duration = duration_of_sec (if quick then 1_000. else 10_000.) in
  let r = Experiments.Fig3.run ~duration () in
  print_endline r.Experiments.Fig3.table;
  print_newline ();
  print_endline r.Experiments.Fig3.note

let run_claims quick =
  section "In-text claims (sections 3.2-3.3) — paper vs model vs simulation";
  let duration = duration_of_sec (if quick then 1_000. else 10_000.) in
  let r = Experiments.Claims.run ~duration () in
  print_endline r.Experiments.Claims.table

let run_ablations quick =
  section "Section 4 ablations — lease-management options";
  let duration = duration_of_sec (if quick then 500. else 3_000.) in
  let r = Experiments.Ablations.run ~duration () in
  print_endline r.Experiments.Ablations.table

let run_faults () =
  section "Section 5 drills — fault tolerance";
  let r = Experiments.Faults.run () in
  List.iter
    (fun s ->
      Printf.printf "[%s] %s\n" (if s.Experiments.Faults.ok then "ok" else "FAIL")
        s.Experiments.Faults.name;
      List.iter (fun line -> Printf.printf "    %s\n" line) s.Experiments.Faults.lines)
    r.Experiments.Faults.scenarios

let run_future quick =
  section "Section 3.3 — future systems: faster processors, wider networks";
  let duration = duration_of_sec (if quick then 500. else 5_000.) in
  let r = Experiments.Future.run ~duration () in
  print_endline r.Experiments.Future.table

let run_writeback quick =
  section "Extension — write-back caching (read/write leases, MFS/Echo tokens)";
  let duration = duration_of_sec (if quick then 400. else 2_000.) in
  let r = Experiments.Writeback.run ~duration () in
  print_endline r.Experiments.Writeback.table

let run_granularity quick =
  section "Lease granularity — fewer lease records vs induced false sharing";
  let duration = duration_of_sec (if quick then 500. else 3_000.) in
  let r = Experiments.Granularity.run ~duration () in
  print_endline r.Experiments.Granularity.table

let run_adaptive quick =
  section "Adaptive terms (the paper's closing future-work item)";
  let duration = duration_of_sec (if quick then 400. else 2_000.) in
  let r = Experiments.Adaptive.run ~duration () in
  print_endline r.Experiments.Adaptive.table

let run_baselines quick =
  section "Section 6 — leases vs polling vs callbacks vs TTL hints";
  let duration = duration_of_sec (if quick then 500. else 3_000.) in
  let r = Experiments.Baselines_cmp.run ~duration () in
  print_endline r.Experiments.Baselines_cmp.table

let run_shards quick =
  section "Sharded deployment — per-server consistency load vs client and shard count";
  let duration = duration_of_sec (if quick then 800. else 2_000.) in
  let r = Experiments.Shard_scale.run ~duration () in
  Printf.printf "unsaturated regime (%.1f s term):\n" r.Experiments.Shard_scale.term_s;
  print_endline r.Experiments.Shard_scale.table;
  print_newline ();
  Printf.printf "amortized regime (%.0f s term):\n" r.Experiments.Shard_scale.amortized_term_s;
  print_endline r.Experiments.Shard_scale.table_amortized;
  print_newline ();
  print_endline r.Experiments.Shard_scale.note

let all_experiments =
  [
    ("params", fun _quick -> run_params ());
    ("table2", run_table2);
    ("fig1", run_fig1);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("claims", run_claims);
    ("ablations", run_ablations);
    ("faults", fun _quick -> run_faults ());
    ("baselines", run_baselines);
    ("future", run_future);
    ("writeback", run_writeback);
    ("granularity", run_granularity);
    ("adaptive", run_adaptive);
    ("shards", run_shards);
  ]

let run_experiment quick name =
  match List.assoc_opt name all_experiments with
  | Some f ->
    f quick;
    `Ok ()
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; pick one of: all %s" name
          (String.concat " " (List.map fst all_experiments)) )

let main experiment quick =
  if experiment = "all" then begin
    List.iter (fun (_, f) -> f quick) all_experiments;
    `Ok ()
  end
  else run_experiment quick experiment

open Cmdliner

let experiment_arg =
  let doc = "Which experiment to regenerate: all, params, table2, fig1, fig2, fig3, claims, ablations, faults, baselines, future, writeback, granularity, adaptive or shards." in
  Arg.(value & opt string "all" & info [ "e"; "experiment" ] ~docv:"NAME" ~doc)

let quick_arg =
  let doc = "Shorter simulated traces: coarser curves, much faster." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let cmd =
  let doc = "Regenerate the tables and figures of Gray & Cheriton's leases paper (SOSP '89)." in
  Cmd.v (Cmd.info "leases-figures" ~doc) Term.(ret (const main $ experiment_arg $ quick_arg))

let () = exit (Cmd.eval cmd)
