(* Render a saved critical-path latency report (leases-sim --latency-out),
   or re-run the analyzer over a raw JSONL trace, and optionally gate on
   phase-partition conservation: every completed operation's attributed
   phases must sum to its client-observed latency. *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let conserve_tolerance = 1e-9

let gate ~quiet ~checked ~max_err =
  if checked = 0 then
    `Error (false, "conservation gate: no completed operations to check — empty or untraced run?")
  else if max_err <= conserve_tolerance then begin
    if not quiet then
      Format.printf "conservation gate: %d ops, max |error| %.3g s within %.0e@." checked max_err
        conserve_tolerance;
    `Ok ()
  end
  else
    `Error
      ( false,
        Printf.sprintf
          "conservation gate: max |phase sum - latency| = %.3g s over %d ops exceeds %.0e — \
           attributed phases do not partition the measured latency"
          max_err checked conserve_tolerance )

(* --- JSON-report mode --------------------------------------------------- *)

let num_mem name obj =
  match Trace.Json.member name obj with Some (Trace.Json.Num v) -> Some v | _ -> None

let str_mem name obj =
  match Trace.Json.member name obj with Some (Trace.Json.Str s) -> Some s | _ -> None

let int_mem name obj = Option.map int_of_float (num_mem name obj)

let print_summary_line ppf label obj =
  match
    (num_mem "p50" obj, num_mem "p90" obj, num_mem "p99" obj, num_mem "p999" obj, num_mem "sum" obj)
  with
  | Some p50, Some p90, Some p99, Some p999, Some sum ->
    Format.fprintf ppf "  %-12s p50=%.6g p90=%.6g p99=%.6g p99.9=%.6g sum=%.6g@." label p50 p90
      p99 p999 sum
  | _ -> ()

let print_json_report doc k =
  (match Trace.Json.member "ops" doc with
  | Some (Trace.Json.Obj kinds) ->
    List.iter
      (fun (kind, stats) ->
        let count = Option.value ~default:0 (int_mem "count" stats) in
        let incomplete = Option.value ~default:0 (int_mem "incomplete" stats) in
        let abandoned = Option.value ~default:0 (int_mem "abandoned" stats) in
        if count > 0 || incomplete > 0 || abandoned > 0 then begin
          Format.printf "%s ops: %d completed" kind count;
          if incomplete > 0 then Format.printf ", %d incomplete" incomplete;
          if abandoned > 0 then Format.printf ", %d abandoned" abandoned;
          Format.printf "@.";
          (match Trace.Json.member "latency" stats with
          | Some lat when count > 0 -> print_summary_line Format.std_formatter "latency" lat
          | _ -> ());
          match Trace.Json.member "phases" stats with
          | Some (Trace.Json.Obj phs) when count > 0 ->
            List.iter
              (fun (name, s) ->
                match num_mem "sum" s with
                | Some sum when sum > 0. -> print_summary_line Format.std_formatter name s
                | _ -> ())
              phs
          | _ -> ()
        end)
      kinds
  | _ -> ());
  (match Trace.Json.member "conservation" doc with
  | Some c -> (
    match (int_mem "checked" c, num_mem "max_abs_error" c) with
    | Some checked, Some err ->
      Format.printf "conservation: %d ops checked, max |error| = %.3g s@." checked err
    | _ -> ())
  | None -> ());
  (match Trace.Json.member "per_server" doc with
  | Some (Trace.Json.Arr ([ _; _ ] as rows)) | Some (Trace.Json.Arr (_ :: _ :: _ as rows)) ->
    List.iter
      (fun row ->
        match (int_mem "server" row, int_mem "ops" row, int_mem "writes" row) with
        | Some s, Some ops, Some writes ->
          Format.printf "server %d: %d ops, %d writes@." s ops writes
        | _ -> ())
      rows
  | _ -> ());
  match Trace.Json.member "worst_writes" doc with
  | Some (Trace.Json.Arr (_ :: _ as worst)) ->
    Format.printf "worst writes:@.";
    List.iteri
      (fun i w ->
        if i < k then
          match str_mem "explain" w with
          | Some e -> Format.printf "  %s@." e
          | None -> ())
      worst
  | _ -> ()

let run_json text gate_conserve quiet k =
  match Trace.Json.parse text with
  | Error why -> `Error (false, Printf.sprintf "not a JSON report: %s" why)
  | Ok doc -> (
    (match str_mem "format" doc with
    | Some "leases-latency/1" -> ()
    | Some other -> Format.eprintf "warning: unexpected format tag %S@." other
    | None -> Format.eprintf "warning: missing format tag@.");
    if not quiet then print_json_report doc k;
    if not gate_conserve then `Ok ()
    else
      match Trace.Json.member "conservation" doc with
      | Some c -> (
        match (int_mem "checked" c, num_mem "max_abs_error" c) with
        | Some checked, Some max_err -> gate ~quiet ~checked ~max_err
        | _ -> `Error (false, "conservation member is malformed"))
      | None -> `Error (false, "report has no conservation member"))

(* --- raw-trace mode ----------------------------------------------------- *)

let run_trace path gate_conserve quiet k =
  let analyzer = Trace.Critical_path.create () in
  let ic = open_in path in
  let bad = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Trace.Codec.decode line with
         | Ok e -> Trace.Critical_path.feed analyzer e
         | Error _ -> incr bad
     done
   with End_of_file -> close_in ic);
  if !bad > 0 then Format.eprintf "warning: %d undecodable lines skipped@." !bad;
  let report = Trace.Critical_path.report ~k analyzer in
  if not quiet then Format.printf "%a@." Trace.Critical_path.pp_report report;
  if not gate_conserve then `Ok ()
  else
    gate ~quiet ~checked:report.Trace.Critical_path.r_checked
      ~max_err:report.Trace.Critical_path.r_max_err

let main file from_trace gate_conserve quiet k =
  if from_trace then
    match run_trace file gate_conserve quiet k with
    | r -> r
    | exception Sys_error why -> `Error (false, why)
  else
    match run_json (read_file file) gate_conserve quiet k with
    | r -> r
    | exception Sys_error why -> `Error (false, why)

let file =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE"
           ~doc:"Latency JSON report written by leases-sim --latency-out, or (with --trace) a \
                 raw JSONL event trace to analyze.")

let from_trace =
  Arg.(value & flag
       & info [ "trace" ] ~doc:"Treat $(i,FILE) as a raw JSONL event trace and re-run the \
                                critical-path analyzer over it.")

let gate_conserve =
  Arg.(value & flag
       & info [ "gate-conserve" ]
           ~doc:"Exit non-zero unless every completed operation's attributed phases sum to its \
                 client-observed latency within 1e-9 s (and at least one operation was checked).")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the rendered report.")

let k =
  Arg.(value & opt int 5
       & info [ "k" ] ~docv:"N" ~doc:"Show at most $(docv) worst-write exemplars.")

let cmd =
  let doc = "Render a lease-simulation critical-path latency report." in
  Cmd.v (Cmd.info "leases-latency" ~doc)
    Term.(ret (const main $ file $ from_trace $ gate_conserve $ quiet $ k))

let () = exit (Cmd.eval cmd)
