(* Run one configurable simulation and print the full metric summary. *)

open Cmdliner

let span_sec = Simtime.Time.Span.of_sec

let make_trace workload clients duration seed =
  let duration = span_sec duration in
  match workload with
  | "poisson" -> (Experiments.V_trace.poisson ~seed ~clients ~duration ()).Experiments.V_trace.trace
  | "bursty" -> (Experiments.V_trace.bursty ~seed ~clients ~duration ()).Experiments.V_trace.trace
  | "shared-heavy" ->
    (Experiments.V_trace.shared_heavy ~seed ~clients ~duration ()).Experiments.V_trace.trace
  | other -> failwith (Printf.sprintf "unknown workload %S (poisson|bursty|shared-heavy)" other)

let main protocol term_s clients duration seed loss rtt_ms workload trace_file =
  try
    let trace =
      match trace_file with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        Workload.Trace_io.parse_exn text
      | None -> make_trace workload clients duration seed
    in
    let m_proc = Simtime.Time.Span.of_ms 1. in
    let m_prop = Simtime.Time.Span.of_ms ((rtt_ms -. 4.) /. 2.) in
    let term =
      if term_s < 0. then Analytic.Model.Infinite else Analytic.Model.Finite term_s
    in
    let metrics =
      match protocol with
      | "leases" ->
        let setup = Experiments.Runner.lease_setup ~n_clients:clients ~m_prop ~m_proc ~term () in
        let setup = { setup with Leases.Sim.loss; seed } in
        (Leases.Sim.run setup ~trace).Leases.Sim.metrics
      | "polling" ->
        let setup =
          { Baselines.Polling.default_setup with
            Baselines.Polling.n_clients = clients; m_prop; m_proc; loss; seed }
        in
        (Baselines.Polling.run setup ~trace).Leases.Sim.metrics
      | "callback" ->
        let setup =
          { Baselines.Callback.default_setup with
            Baselines.Callback.n_clients = clients; m_prop; m_proc; loss; seed }
        in
        (Baselines.Callback.run setup ~trace).Leases.Sim.metrics
      | "ttl" ->
        let ttl = if term_s <= 0. then span_sec 10. else span_sec term_s in
        let setup =
          { Baselines.Ttl_hints.default_setup with
            Baselines.Ttl_hints.n_clients = clients; m_prop; m_proc; loss; seed; ttl }
        in
        (Baselines.Ttl_hints.run setup ~trace).Leases.Sim.metrics
      | other ->
        failwith (Printf.sprintf "unknown protocol %S (leases|polling|callback|ttl)" other)
    in
    Format.printf "%a@." Leases.Metrics.pp metrics;
    `Ok ()
  with Failure why | Sys_error why -> `Error (false, why)

let protocol =
  Arg.(value & opt string "leases"
       & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"leases, polling, callback or ttl.")

let term =
  Arg.(value & opt float 10.
       & info [ "t"; "term" ] ~docv:"SEC" ~doc:"Lease term (or TTL) in seconds; negative = infinite.")

let clients =
  Arg.(value & opt int 1 & info [ "n"; "clients" ] ~docv:"N" ~doc:"Number of client caches.")

let duration =
  Arg.(value & opt float 600. & info [ "d"; "duration" ] ~docv:"SEC" ~doc:"Virtual seconds of workload.")

let seed = Arg.(value & opt int64 1L & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let loss =
  Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P" ~doc:"Per-delivery message loss probability.")

let rtt =
  Arg.(value & opt float 5. & info [ "rtt" ] ~docv:"MS" ~doc:"Unicast round-trip time in milliseconds.")

let workload =
  Arg.(value & opt string "poisson"
       & info [ "w"; "workload" ] ~docv:"KIND" ~doc:"poisson, bursty or shared-heavy.")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE" ~doc:"Drive the run from a trace file (see leases-tracegen).")

let cmd =
  let doc = "Simulate a distributed file cache under a chosen consistency protocol." in
  Cmd.v (Cmd.info "leases-sim" ~doc)
    Term.(ret (const main $ protocol $ term $ clients $ duration $ seed $ loss $ rtt $ workload
               $ trace_file))

let () = exit (Cmd.eval cmd)
