(* Run one configurable simulation and print the full metric summary. *)

open Cmdliner

let span_sec = Simtime.Time.Span.of_sec

let make_trace workload clients duration seed =
  let duration = span_sec duration in
  match workload with
  | "poisson" -> (Experiments.V_trace.poisson ~seed ~clients ~duration ()).Experiments.V_trace.trace
  | "bursty" -> (Experiments.V_trace.bursty ~seed ~clients ~duration ()).Experiments.V_trace.trace
  | "shared-heavy" ->
    (Experiments.V_trace.shared_heavy ~seed ~clients ~duration ()).Experiments.V_trace.trace
  | other -> failwith (Printf.sprintf "unknown workload %S (poisson|bursty|shared-heavy)" other)

(* The message model charges one processing delay at each host a message
   crosses, so a unicast RPC pays 2 propagation + 4 processing legs; with
   the fixed 1 ms processing delay the floor is 4 ms of RTT. *)
let m_prop_of_rtt rtt_ms =
  if Float.is_nan rtt_ms || rtt_ms < 4. then
    failwith
      (Printf.sprintf
         "--rtt %g is below the 4 ms floor: RTT = 2 propagation + 4 processing legs and each \
          processing leg is fixed at 1 ms, so propagation would be negative"
         rtt_ms)
  else Simtime.Time.Span.of_ms (Float.max 0. ((rtt_ms -. 4.) /. 2.))

(* --fault specs: kind=args with comma-separated numbers, e.g.
   crash-client=1,30,20 (client 1 down at t=30 for 20 s) or
   server-drift=40,1.0 (server clock runs 2x from t=40).  The grammar
   lives in [Leases.Sim] so campaign reproducers stay parseable here. *)
let parse_fault spec =
  match Leases.Sim.fault_of_spec spec with Ok fault -> fault | Error why -> failwith why

let trace_sink trace_out trace_format =
  match trace_out with
  | None -> (Trace.Sink.null, fun () -> ())
  | Some path -> (
    match trace_format with
    | "jsonl" ->
      let oc = open_out path in
      (Trace.Sink.jsonl oc, fun () -> close_out oc)
    | "chrome" ->
      let buf = Trace.Sink.buffer () in
      ( Trace.Sink.buffer_sink buf,
        fun () ->
          let oc = open_out path in
          Trace.Chrome.write oc (Trace.Sink.buffer_contents buf);
          close_out oc )
    | other -> failwith (Printf.sprintf "unknown trace format %S (jsonl|chrome)" other))

(* --telemetry wires a Telemetry.Sampler into the run via the
   on_instruments hook; the report is written after the run drains so the
   final partial window is included. *)
let finish_telemetry sampler ~term ~setup ~telemetry_out ~telemetry_format ~json =
  Telemetry.Sampler.finalize sampler;
  let params = Telemetry.Residual.params_of_setup ~term setup in
  (match telemetry_out with
  | None -> ()
  | Some path ->
    let data =
      match telemetry_format with
      | "json" -> Telemetry.Report.to_json_string ~params sampler
      | "csv" -> Telemetry.Report.to_csv_string ~params sampler
      | other -> failwith (Printf.sprintf "unknown telemetry format %S (json|csv)" other)
    in
    let oc = open_out path in
    output_string oc data;
    close_out oc);
  if not json then begin
    let summary =
      Telemetry.Residual.summarize params (Telemetry.Residual.evaluate params sampler)
    in
    Format.printf
      "telemetry: %d windows (%d flagged), consistency load %.3f msg/s measured vs %.3f \
       predicted, steady residual %+.1f%%@."
      summary.Telemetry.Residual.windows summary.Telemetry.Residual.flagged_windows
      summary.Telemetry.Residual.mean_measured_load
      summary.Telemetry.Residual.mean_predicted_load
      (100. *. summary.Telemetry.Residual.steady_load_residual)
  end

(* --latency tees a live critical-path analyzer next to the tracer; the
   report is rendered (and optionally exported) after the run drains so
   still-open operations are counted as incomplete, not lost. *)
let finish_latency analyzer ~latency_out ~latency_k ~json =
  let report = Trace.Critical_path.report ~k:latency_k analyzer in
  (match latency_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Trace.Critical_path.export report);
    close_out oc);
  if not json then Format.printf "%a@." Trace.Critical_path.pp_report report

(* --profile attaches a Profile.Recorder to the engine; the report is
   rendered after the run drains.  The hotspot table goes to stdout unless
   --json asked for machine-readable output only. *)
let finish_profile recorder ~profile_out ~profile_format ~json =
  let report = Profile.Report.of_recorder recorder in
  (match profile_out with
  | None -> ()
  | Some path ->
    let data =
      match profile_format with
      | "json" -> Profile.Report.to_json_string report
      | "speedscope" -> Profile.Report.to_speedscope report
      | "chrome" -> Profile.Report.to_chrome report
      | other -> failwith (Printf.sprintf "unknown profile format %S (json|speedscope|chrome)" other)
    in
    let oc = open_out path in
    output_string oc data;
    close_out oc);
  if not json then print_string (Profile.Report.hotspot_table report)

(* --shards N runs the multi-server deployment: per-shard loads after the
   aggregate metrics, and per-shard residual summaries when telemetry is
   on.  --domains K switches to the split deployment (one sub-simulation
   per shard, up to K of them on parallel OCaml domains) and additionally
   allows --profile, recording each shard's engine separately. *)
let print_shard_loads per_shard =
  Array.iter
    (fun sl ->
      Format.printf
        "shard %d (host %d): consistency %d msgs (%.3f/s) = ext %d + appr %d + inst %d; \
         total handled %d, commits %d@."
        sl.Shard.Deploy.sl_shard sl.Shard.Deploy.sl_host sl.Shard.Deploy.sl_consistency_msgs
        sl.Shard.Deploy.sl_consistency_rate sl.Shard.Deploy.sl_extension_msgs
        sl.Shard.Deploy.sl_approval_msgs sl.Shard.Deploy.sl_installed_msgs
        sl.Shard.Deploy.sl_total_msgs sl.Shard.Deploy.sl_commits)
    per_shard

let print_shard_telemetry reports =
  Array.iter
    (fun r ->
      let s = r.Shard.Shard_telemetry.sr_summary in
      Format.printf
        "shard %d telemetry: %d windows (%d flagged), load %.3f msg/s measured vs %.3f \
         predicted, steady residual %+.1f%%@."
        r.Shard.Shard_telemetry.sr_shard s.Telemetry.Residual.windows
        s.Telemetry.Residual.flagged_windows s.Telemetry.Residual.mean_measured_load
        s.Telemetry.Residual.mean_predicted_load
        (100. *. s.Telemetry.Residual.steady_load_residual))
    reports

(* Split-mode per-shard profiles: one leases-profile/1 document per shard,
   wrapped in a leases-profile-shards/1 envelope keyed by shard index. *)
let finish_shard_profiles profilers ~profile_out ~profile_format ~json =
  (match profile_out with
  | None -> ()
  | Some path ->
    (match profile_format with
    | "json" -> ()
    | other ->
      failwith
        (Printf.sprintf "per-shard profiles support --profile-format json only, not %S" other));
    let sections =
      Array.to_list
        (Array.mapi
           (fun s r ->
             Printf.sprintf "%S:%s" (string_of_int s)
               (Profile.Report.to_json_string (Profile.Report.of_recorder r)))
           profilers)
    in
    let oc = open_out path in
    output_string oc
      (Printf.sprintf "{\"schema\":\"leases-profile-shards/1\",\"shards\":{%s}}"
         (String.concat "," sections));
    close_out oc);
  if not json then
    Array.iteri
      (fun s r ->
        Format.printf "shard %d profile:@." s;
        print_string (Profile.Report.hotspot_table (Profile.Report.of_recorder r)))
      profilers

let run_sharded ~shards ~domains ~clients ~seed ~loss ~m_prop ~m_proc ~term ~faults ~tracer
    ~telemetry_s ~analyzer ~json ~trace ~profile ~profile_out ~profile_format =
  let base = Experiments.Runner.lease_setup ~n_clients:clients ~m_prop ~m_proc ~term () in
  let profilers =
    if profile then
      let interval_s = Option.value telemetry_s ~default:10. in
      Array.init shards (fun _ ->
          Profile.Recorder.create ~interval_s ~timer:Unix.gettimeofday ())
    else [||]
  in
  let setup =
    {
      Shard.Deploy.default_setup with
      Shard.Deploy.seed;
      n_clients = clients;
      n_shards = shards;
      config = base.Leases.Sim.config;
      m_prop;
      m_proc;
      loss;
      faults;
      tracer;
      telemetry_interval_s = telemetry_s;
      latency = analyzer;
      profilers;
    }
  in
  match domains with
  | None ->
    let outcome = Shard.Deploy.run setup ~trace in
    let print_extra () =
      if not json then begin
        print_shard_loads outcome.Shard.Deploy.per_shard;
        Option.iter print_shard_telemetry (Shard.Deploy.telemetry_report setup outcome)
      end
    in
    (outcome.Shard.Deploy.metrics, print_extra)
  | Some domains ->
    let outcome = Shard.Deploy.run_split ~domains setup ~trace in
    let print_extra () =
      if not json then begin
        print_shard_loads outcome.Shard.Deploy.sp_per_shard;
        Option.iter print_shard_telemetry (Shard.Deploy.split_telemetry_report setup outcome)
      end;
      if profile then finish_shard_profiles profilers ~profile_out ~profile_format ~json
    in
    (outcome.Shard.Deploy.sp_metrics, print_extra)

let rec main protocol term_s clients duration seed loss rtt_ms workload ops_file json trace_out
    trace_format fault_specs telemetry_s telemetry_out telemetry_format shards domains profile
    profile_out profile_format latency latency_out latency_k =
  try
    let faults = List.map parse_fault fault_specs in
    if shards < 1 then failwith "--shards must be at least 1";
    (match domains with
    | Some d when d < 1 -> failwith "--domains must be at least 1"
    | Some _ when shards < 2 ->
      failwith "--domains runs each shard as its own sub-simulation; it needs --shards at least 2"
    | _ -> ());
    if latency_out <> None && not latency then failwith "--latency-out requires --latency";
    if latency_k < 1 then failwith "--latency-k must be at least 1";
    if latency && protocol <> "leases" then
      failwith
        (Printf.sprintf
           "--latency attributes the lease protocol's phases; protocol %S does not emit the \
            correlated events it needs"
           protocol);
    if shards > 1 && protocol <> "leases" then
      failwith "--shards runs the sharded lease deployment; it needs --protocol leases";
    if profile_out <> None && not profile then failwith "--profile-out requires --profile";
    if profile && protocol <> "leases" then
      failwith
        (Printf.sprintf
           "--profile instruments the lease protocol's engine; protocol %S does not expose it"
           protocol);
    if profile && shards > 1 && domains = None then
      failwith
        "--profile records the single-server engine; with --shards it needs --domains (one \
         recorder per shard sub-simulation)";
    if shards > 1 && telemetry_out <> None then
      failwith
        "--telemetry-out writes a single-server report; with --shards use the printed per-shard \
         summaries";
    if telemetry_out <> None && telemetry_s = None then
      failwith "--telemetry-out requires --telemetry INTERVAL";
    (match telemetry_s with
    | Some i when i <= 0. -> failwith "--telemetry interval must be positive"
    | _ -> ());
    if telemetry_s <> None && protocol <> "leases" then
      failwith
        (Printf.sprintf
           "--telemetry instruments the lease protocol's server and clients; protocol %S does \
            not expose them"
           protocol);
    let trace =
      match ops_file with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        Workload.Trace_io.parse_exn text
      | None -> make_trace workload clients duration seed
    in
    let m_proc = Simtime.Time.Span.of_ms 1. in
    let m_prop = m_prop_of_rtt rtt_ms in
    let tracer, finish_trace = trace_sink trace_out trace_format in
    let analyzer = if latency then Some (Trace.Critical_path.create ()) else None in
    let tracer =
      match analyzer with
      | None -> tracer
      | Some a -> Trace.Sink.tee [ tracer; Trace.Critical_path.sink a ]
    in
    let term = if term_s < 0. then Analytic.Model.Infinite else Analytic.Model.Finite term_s in
    let metrics, print_extra =
      if shards > 1 then
        run_sharded ~shards ~domains ~clients ~seed ~loss ~m_prop ~m_proc ~term ~faults ~tracer
          ~telemetry_s ~analyzer ~json ~trace ~profile ~profile_out ~profile_format
      else
        ( run_single ~protocol ~term ~term_s ~clients ~seed ~loss ~m_prop ~m_proc ~faults ~tracer
            ~telemetry_s ~telemetry_out ~telemetry_format ~analyzer ~json ~trace ~profile
            ~profile_out ~profile_format,
          fun () -> () )
    in
    finish_trace ();
    if json then print_endline (Leases.Metrics.to_json metrics)
    else Format.printf "%a@." Leases.Metrics.pp metrics;
    print_extra ();
    Option.iter (fun a -> finish_latency a ~latency_out ~latency_k ~json) analyzer;
    `Ok ()
  with Failure why | Sys_error why | Invalid_argument why -> `Error (false, why)

and run_single ~protocol ~term ~term_s ~clients ~seed ~loss ~m_prop ~m_proc ~faults ~tracer
    ~telemetry_s ~telemetry_out ~telemetry_format ~analyzer ~json ~trace ~profile ~profile_out
    ~profile_format =
  match protocol with
  | "leases" ->
        let setup = Experiments.Runner.lease_setup ~n_clients:clients ~m_prop ~m_proc ~term () in
        let setup = { setup with Leases.Sim.loss; seed; tracer; faults } in
        let sampler =
          Option.map (fun interval_s -> Telemetry.Sampler.create ~interval_s ()) telemetry_s
        in
        let setup =
          match sampler with
          | None -> setup
          | Some s -> { setup with Leases.Sim.on_instruments = Telemetry.Sampler.attach s }
        in
        (match (sampler, analyzer) with
        | Some s, Some a ->
          Telemetry.Sampler.set_phase_source s (fun () -> Trace.Critical_path.phase_sums a)
        | _ -> ());
        let recorder =
          if profile then
            (* Engine-health samples share the telemetry cadence when one
               was asked for, 10 s otherwise. *)
            let interval_s = Option.value telemetry_s ~default:10. in
            Some (Profile.Recorder.create ~interval_s ~timer:Unix.gettimeofday ())
          else None
        in
        let setup =
          match recorder with
          | None -> setup
          | Some r -> { setup with Leases.Sim.profiler = r }
        in
        let metrics = (Leases.Sim.run setup ~trace).Leases.Sim.metrics in
        Option.iter
          (fun s -> finish_telemetry s ~term ~setup ~telemetry_out ~telemetry_format ~json)
          sampler;
        Option.iter (fun r -> finish_profile r ~profile_out ~profile_format ~json) recorder;
        metrics
      | "polling" ->
        let setup =
          { Baselines.Polling.default_setup with
            Baselines.Polling.n_clients = clients; m_prop; m_proc; loss; seed; tracer; faults }
        in
        (Baselines.Polling.run setup ~trace).Leases.Sim.metrics
      | "callback" ->
        let setup =
          { Baselines.Callback.default_setup with
            Baselines.Callback.n_clients = clients; m_prop; m_proc; loss; seed; tracer; faults }
        in
        (Baselines.Callback.run setup ~trace).Leases.Sim.metrics
      | "ttl" ->
        let ttl = if term_s <= 0. then span_sec 10. else span_sec term_s in
        let setup =
          { Baselines.Ttl_hints.default_setup with
            Baselines.Ttl_hints.n_clients = clients; m_prop; m_proc; loss; seed; ttl; tracer;
            faults }
        in
        (Baselines.Ttl_hints.run setup ~trace).Leases.Sim.metrics
      | other ->
        failwith (Printf.sprintf "unknown protocol %S (leases|polling|callback|ttl)" other)

let protocol =
  Arg.(value & opt string "leases"
       & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"leases, polling, callback or ttl.")

let term =
  Arg.(value & opt float 10.
       & info [ "t"; "term" ] ~docv:"SEC" ~doc:"Lease term (or TTL) in seconds; negative = infinite.")

let clients =
  Arg.(value & opt int 1 & info [ "n"; "clients" ] ~docv:"N" ~doc:"Number of client caches.")

let duration =
  Arg.(value & opt float 600. & info [ "d"; "duration" ] ~docv:"SEC" ~doc:"Virtual seconds of workload.")

let seed = Arg.(value & opt int64 1L & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let loss =
  Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P" ~doc:"Per-delivery message loss probability.")

let rtt =
  Arg.(value & opt float 5.
       & info [ "rtt" ] ~docv:"MS"
           ~doc:"Unicast round-trip time in milliseconds; must be at least 4 (the fixed \
                 processing legs).")

let workload =
  Arg.(value & opt string "poisson"
       & info [ "w"; "workload" ] ~docv:"KIND" ~doc:"poisson, bursty or shared-heavy.")

let ops_file =
  Arg.(value & opt (some string) None
       & info [ "ops" ] ~docv:"FILE"
           ~doc:"Drive the run from a workload trace file (see leases-tracegen).")

let json =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Print metrics as one machine-readable JSON object instead of the \
                               human summary.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the structured protocol event trace to $(docv) (see leases-tracedump).")

let trace_format =
  Arg.(value & opt string "jsonl"
       & info [ "trace-format" ] ~docv:"FMT"
           ~doc:"Event trace format: jsonl (one event per line, tracedump input) or chrome \
                 (chrome://tracing / Perfetto timeline).")

let faults =
  Arg.(value & opt_all string []
       & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Inject a fault (repeatable): crash-client=CLIENT,AT,DUR; crash-server=AT,DUR; \
                 partition=C1+C2,AT,DUR; client-drift=CLIENT,AT,RATE; \
                 server-drift=[SHARD,]AT,RATE; client-step=CLIENT,AT,SEC; \
                 server-step=[SHARD,]AT,SEC.  Times in virtual seconds; the server clock \
                 faults default to shard 0 when no shard is given.")

let telemetry =
  Arg.(value & opt (some float) None
       & info [ "telemetry" ] ~docv:"SEC"
           ~doc:"Sample telemetry every $(docv) virtual seconds (leases protocol only): counter \
                 registries, lease-table occupancy, write queues, in-flight messages, clock \
                 skew, and live analytic-model residuals per window.")

let telemetry_out =
  Arg.(value & opt (some string) None
       & info [ "telemetry-out" ] ~docv:"FILE"
           ~doc:"Write the telemetry report to $(docv) (see leases-telemetry); requires \
                 --telemetry.")

let telemetry_format =
  Arg.(value & opt string "json"
       & info [ "telemetry-format" ] ~docv:"FMT"
           ~doc:"Telemetry report format: json (full report, leases-telemetry input) or csv \
                 (per-window scalars).")

let shards =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Partition the file namespace across $(docv) independent lease servers \
                 (consistent hashing; servers are hosts 0..N-1) and route every client \
                 operation to the owning shard.  Leases protocol only.  Adds crash-shard=\
                 SHARD,AT,DUR to the --fault vocabulary and prints per-shard load lines \
                 after the aggregate metrics.")

let domains =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"K"
           ~doc:"With --shards: run each shard as a self-contained sub-simulation, up to \
                 $(docv) of them concurrently on OCaml domains, and merge the results \
                 deterministically (metrics summed, histograms merged, traces interleaved by \
                 timestamp).  --domains 1 runs the same sub-simulations sequentially and \
                 produces bit-identical output to any other domain count.")

let profile =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Self-profile the run (leases protocol, single server): attribute wall time and \
                 GC allocation to per-subsystem cost centers and sample engine health (queue \
                 depth, live/occupied slots, cancel ratio, events per sim-second) on the \
                 telemetry cadence.  Prints a hotspot table; see leases-profile-view.")

let profile_out =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"Write the leases-profile/1 report to $(docv); requires --profile.")

let profile_format =
  Arg.(value & opt string "json"
       & info [ "profile-format" ] ~docv:"FMT"
           ~doc:"Profile report format: json (leases-profile/1, leases-profile-view input), \
                 speedscope (speedscope.app flamegraph) or chrome (chrome://tracing / Perfetto).")

let latency =
  Arg.(value & flag
       & info [ "latency" ]
           ~doc:"Attribute every operation's client-observed latency to causal phases (request \
                 transit, backoff, server queueing, lease waits split by approval vs expiry, \
                 reply transit) with a live critical-path analyzer (leases protocol only).  \
                 Prints per-phase tail summaries and worst-write explanations; see \
                 leases-latency.")

let latency_out =
  Arg.(value & opt (some string) None
       & info [ "latency-out" ] ~docv:"FILE"
           ~doc:"Write the leases-latency/1 JSON report to $(docv) (leases-latency input); \
                 requires --latency.")

let latency_k =
  Arg.(value & opt int 5
       & info [ "latency-k" ] ~docv:"N"
           ~doc:"Keep $(docv) worst-write exemplars in the latency report.")

let cmd =
  let doc = "Simulate a distributed file cache under a chosen consistency protocol." in
  Cmd.v (Cmd.info "leases-sim" ~doc)
    Term.(ret (const main $ protocol $ term $ clients $ duration $ seed $ loss $ rtt $ workload
               $ ops_file $ json $ trace_out $ trace_format $ faults $ telemetry $ telemetry_out
               $ telemetry_format $ shards $ domains $ profile $ profile_out $ profile_format
               $ latency $ latency_out $ latency_k))

let () = exit (Cmd.eval cmd)
