(* The non-write-through extension: write leases (MFS/Echo-style tokens).

   A designer keeps saving a document.  Under write-through leases every
   save pays a round trip; under a write lease the saves are local and the
   server sees one batched flush.  When a colleague opens the document,
   the server recalls the lease: the owner flushes and the colleague reads
   the latest save — never a stale one.

   Run with:  dune exec examples/write_back.exe *)

open Simtime

let printf = Printf.printf

let () =
  let engine = Engine.create () in
  let liveness = Host.Liveness.create () in
  let net =
    Netsim.Net.create engine ~liveness ~prop_delay:(Time.Span.of_ms 0.5)
      ~proc_delay:(Time.Span.of_ms 1.) ()
  in
  let server_host = Host.Host_id.of_int 0 in
  let store = Vstore.Store.create () in
  let _server =
    Wlease.Wserver.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness
      ~host:server_host ~store ~term:(Time.Span.of_sec 10.) ()
  in
  let make_client i =
    Wlease.Wclient.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness
      ~host:(Host.Host_id.of_int (i + 1)) ~server:server_host
      ~config:Wlease.Wclient.default_wconfig ()
  in
  let designer = make_client 0 in
  let colleague = make_client 1 in
  let doc = Vstore.File_id.of_int 42 in
  let t () = Format.asprintf "%a" Time.pp (Engine.now engine) in

  let save () =
    Wlease.Wclient.write designer doc ~k:(fun w ->
        printf "designer  t=%-9s save  (%.1f ms%s)\n" (t ())
          (Time.Span.to_ms w.Wlease.Wclient.w_latency)
          (if w.Wlease.Wclient.w_acquired_lease then ", acquired the write lease" else ", local"))
  in
  let at sec f = ignore (Engine.schedule_at engine (Time.of_sec sec) f) in
  at 1.0 save;
  at 2.0 save;
  at 3.0 save;
  at 4.0 (fun () ->
      printf "designer  t=%-9s has %d unflushed saves buffered locally\n" (t ())
        (Wlease.Wclient.dirty_writes designer doc));
  at 8.0 (fun () ->
      printf "colleague t=%-9s opens the document (server recalls the write lease)\n" (t ());
      Wlease.Wclient.read colleague doc ~k:(fun r ->
          printf "colleague t=%-9s sees version %d after %.1f ms — every save, nothing stale\n"
            (t ())
            (Vstore.Version.to_int r.Wlease.Wclient.r_version)
            (Time.Span.to_ms r.Wlease.Wclient.r_latency)));
  Engine.run ~until:(Time.of_sec 12.) engine;
  printf "\nstore is at version %d; designer lost %d writes; flushes: %d\n"
    (Vstore.Version.to_int (Vstore.Store.current store doc))
    (Wlease.Wclient.writes_lost designer)
    (Wlease.Wclient.flushes_sent designer)
