(* The paper's Section-2 story: a diskless workstation running latex.

   A workstation obtains a 10-second lease on the latex binary; repeated
   runs within the term hit the cache without any server traffic.  When a
   new version of latex is installed, the write is delayed until every
   leaseholder approves — and if one of them has crashed, until its lease
   expires, which is the whole point of making the promise time-limited.

   Run with:  dune exec examples/diskless_workstation.exe *)

open Simtime

let printf = Printf.printf

let () =
  let engine = Engine.create () in
  let liveness = Host.Liveness.create () in
  let net =
    Netsim.Net.create engine ~liveness ~prop_delay:(Time.Span.of_ms 0.5)
      ~proc_delay:(Time.Span.of_ms 1.) ()
  in
  let server_host = Host.Host_id.of_int 0 in
  let desk_host = Host.Host_id.of_int 1 in (* the workstation producing a document *)
  let lab_host = Host.Host_id.of_int 2 in (* a lab machine that will crash *)
  let admin_host = Host.Host_id.of_int 3 in (* the admin installing a new latex *)
  let config = Leases.Config.default in
  let store = Vstore.Store.create () in

  (* The file server also names the files: /usr/bin/latex lives in a
     directory whose name-to-file binding is itself leasable data. *)
  let next_id = ref 0 in
  let fresh_id () =
    let id = Vstore.File_id.of_int !next_id in
    incr next_id;
    id
  in
  let namespace = Vstore.Namespace.create ~fresh_id in
  let bin_dir = Vstore.Namespace.make_directory namespace "/usr/bin" in
  let latex = fresh_id () in
  Vstore.Namespace.bind namespace ~dir:"/usr/bin" ~name:"latex" latex;

  let _server =
    Leases.Server.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness ~host:server_host
      ~clients:[ desk_host; lab_host; admin_host ] ~store ~config ()
  in
  let make_client host =
    Leases.Client.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness ~host
      ~server:server_host ~config ()
  in
  let desk = make_client desk_host in
  let lab = make_client lab_host in
  let admin = make_client admin_host in

  let t () = Format.asprintf "%a" Time.pp (Engine.now engine) in
  let run_latex who client k =
    (* Running latex = a read of the directory binding plus a read of the
       binary; both need leases to be served from the cache. *)
    Leases.Client.read client bin_dir ~k:(fun dir_r ->
        Leases.Client.read client latex ~k:(fun bin_r ->
            printf "%-6s t=%-9s ran latex v%d (lookup: %s, binary: %s)\n" who (t ())
              (Vstore.Version.to_int bin_r.Leases.Client.r_version)
              (if dir_r.Leases.Client.r_from_cache then "cached" else "server")
              (if bin_r.Leases.Client.r_from_cache then "cached" else "server");
            k ()))
  in
  let at sec f = ignore (Engine.schedule_at engine (Time.of_sec sec) f) in

  at 0.0 (fun () -> run_latex "desk" desk (fun () -> ()));
  at 5.0 (fun () -> run_latex "desk" desk (fun () -> ()));
  (* 5 s later: both reads are free cache hits, exactly the paper's example *)
  at 8.0 (fun () -> run_latex "lab" lab (fun () -> ()));
  at 9.0 (fun () ->
      printf "lab    t=%-9s crashes while holding its lease\n" (t ());
      Host.Liveness.crash liveness lab_host);
  at 10.0 (fun () ->
      printf "admin  t=%-9s installs a new latex (write must wait for the lab's lease)\n" (t ());
      Leases.Client.write admin latex ~k:(fun w ->
          printf "admin  t=%-9s install committed as v%d after %.2f s\n" (t ())
            (Vstore.Version.to_int w.Leases.Client.w_version)
            (Time.Span.to_sec w.Leases.Client.w_latency)));
  at 25.0 (fun () -> run_latex "desk" desk (fun () -> ()));
  (* the desk machine picks up the new binary once its own lease lapses *)
  Engine.run engine;
  printf "\nThe install waited out the crashed lab machine's 10 s lease — bounded\n";
  printf "by the term, not by the crash duration.  No client ever saw a stale binary.\n"
