(* Section 3.3: what happens to lease overhead on a wide-area network?

   Same V workload, but the unicast round trip is 100 ms instead of 5 ms.
   The paper's conclusion: even then, terms in the 10-30 s range keep the
   added delay within a few percent of the infinite-term ideal.

   Run with:  dune exec examples/wan_deployment.exe *)

let printf = Printf.printf

let () =
  let duration = Simtime.Time.Span.of_sec 2_000. in
  let trace = (Experiments.V_trace.poisson ~duration ()).Experiments.V_trace.trace in
  let m_proc = Simtime.Time.Span.of_ms 1. in
  let m_prop = Simtime.Time.Span.of_ms 48. in (* RTT = 2*48 + 4*1 = 100 ms *)
  let run label term =
    let setup = Experiments.Runner.lease_setup ~m_prop ~m_proc ~term () in
    let m = Experiments.Runner.run_lease setup trace in
    printf "%-14s consistency: %6.3f msg/s, added delay %7.2f ms/op, hit ratio %.3f\n" label
      m.Leases.Metrics.consistency_msg_rate
      (1000. *. m.Leases.Metrics.mean_op_delay)
      m.Leases.Metrics.hit_ratio
  in
  printf "V workload over a 100 ms-RTT network (2000 virtual seconds):\n\n";
  run "term 0 s" (Analytic.Model.Finite 0.);
  run "term 10 s" (Analytic.Model.Finite 10.);
  run "term 30 s" (Analytic.Model.Finite 30.);
  run "term infinite" Analytic.Model.Infinite;
  let params = Analytic.Params.with_rtt Analytic.Params.v_lan 0.1 in
  printf "\nModel check: a 10 s term degrades response %.1f%% over infinite (paper: 10.1%%),\n"
    (100. *. Analytic.Model.response_degradation params ~base_response:0.1 (Analytic.Model.Finite 10.));
  printf "a 30 s term %.1f%% (paper: 3.6%%) — the 10-30 s range holds up across a WAN.\n"
    (100. *. Analytic.Model.response_degradation params ~base_response:0.1 (Analytic.Model.Finite 30.))
