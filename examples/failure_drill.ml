(* Fault-tolerance drill: a partition hits a cluster mid-workload.

   The same trace runs under leases and under AFS-style callbacks, with
   the consistency oracle watching both.  Leases convert the partition
   into bounded write delay; callbacks convert it into stale reads.

   Run with:  dune exec examples/failure_drill.exe *)

open Simtime

let printf = Printf.printf

let () =
  let clients = 4 in
  let duration = Time.Span.of_sec 1_200. in
  let trace =
    (Experiments.V_trace.shared_heavy ~clients ~duration ()).Experiments.V_trace.trace
  in
  let faults =
    [
      Leases.Sim.Partition_clients
        { clients = [ 0 ]; at = Time.of_sec 300.; duration = Time.Span.of_sec 120. };
      Leases.Sim.Crash_client
        { client = 1; at = Time.of_sec 700.; duration = Time.Span.of_sec 60. };
      Leases.Sim.Crash_server { at = Time.of_sec 900.; duration = Time.Span.of_sec 5. };
    ]
  in
  printf "workload: %d clients, 1200 virtual s; faults: client 0 partitioned at t=300 for\n"
    clients;
  printf "120 s, client 1 crashes at t=700 for 60 s, the server crashes at t=900 for 5 s.\n\n";

  let lease_setup =
    {
      (Experiments.Runner.lease_setup ~n_clients:clients ~term:(Analytic.Model.Finite 10.) ())
      with
      Leases.Sim.faults;
    }
  in
  let lease = (Leases.Sim.run lease_setup ~trace).Leases.Sim.metrics in
  let cb_setup =
    {
      Baselines.Callback.default_setup with
      Baselines.Callback.n_clients = clients;
      faults;
      poll_period = Time.Span.of_sec 120.;
    }
  in
  let cb = (Baselines.Callback.run cb_setup ~trace).Leases.Sim.metrics in

  let report name (m : Leases.Metrics.t) =
    printf "%-22s stale reads %4d   max write wait %6.1f s   consistency %5.3f msg/s\n" name
      m.Leases.Metrics.oracle_violations
      (Stats.Histogram.quantile m.Leases.Metrics.write_wait 1.0)
      m.Leases.Metrics.consistency_msg_rate
  in
  report "leases (10 s term)" lease;
  report "callbacks (AFS)" cb;
  printf "\nLeases: every fault became a delay bounded by the 10 s term; zero stale reads\n";
  printf "out of %d checked.  Callbacks: the server abandoned the unreachable holder and\n"
    lease.Leases.Metrics.oracle_reads;
  printf "the partitioned client kept serving its dead copy — %d stale reads, up to %.0f s\n"
    cb.Leases.Metrics.oracle_violations
    (Stats.Histogram.quantile cb.Leases.Metrics.staleness 1.0);
  printf "old, until its next revalidation poll.\n"
