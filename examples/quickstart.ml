(* Quickstart: build a one-server/two-client cluster by hand, do a few
   reads and writes, and watch the lease machinery work.

   Run with:  dune exec examples/quickstart.exe *)

open Simtime

let printf = Printf.printf

let () =
  (* 1. The substrate: a virtual clock/event engine, host liveness and a
     network with V-like message times (5 ms unicast round trip). *)
  let engine = Engine.create () in
  let liveness = Host.Liveness.create () in
  let net =
    Netsim.Net.create engine ~liveness ~prop_delay:(Time.Span.of_ms 0.5)
      ~proc_delay:(Time.Span.of_ms 1.) ()
  in

  (* 2. A file server granting 10-second leases, and two client caches. *)
  let server_host = Host.Host_id.of_int 0 in
  let alice_host = Host.Host_id.of_int 1 in
  let bob_host = Host.Host_id.of_int 2 in
  let config = Leases.Config.default (* 10 s fixed term *) in
  let store = Vstore.Store.create () in
  let _server =
    Leases.Server.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness ~host:server_host
      ~clients:[ alice_host; bob_host ] ~store ~config ()
  in
  let alice =
    Leases.Client.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness ~host:alice_host
      ~server:server_host ~config ()
  in
  let bob =
    Leases.Client.create ~engine ~clock:(Clock.create engine ()) ~net ~liveness ~host:bob_host
      ~server:server_host ~config ()
  in

  let report_read who (r : Leases.Client.read_result) =
    printf "%-6s t=%-8s read  -> version %d (%s, %.1f ms)\n" who
      (Format.asprintf "%a" Time.pp (Engine.now engine))
      (Vstore.Version.to_int r.Leases.Client.r_version)
      (if r.Leases.Client.r_from_cache then "cache hit" else "fetched")
      (Time.Span.to_ms r.Leases.Client.r_latency)
  in
  let report_write who (w : Leases.Client.write_result) =
    printf "%-6s t=%-8s write -> version %d (%.1f ms)\n" who
      (Format.asprintf "%a" Time.pp (Engine.now engine))
      (Vstore.Version.to_int w.Leases.Client.w_version)
      (Time.Span.to_ms w.Leases.Client.w_latency)
  in

  (* 3. A little script.  All activity is event-driven: schedule it, then
     run the engine. *)
  let file = Vstore.File_id.of_int 7 in
  let at sec f = ignore (Engine.schedule_at engine (Time.of_sec sec) f) in
  at 0.0 (fun () -> Leases.Client.read alice file ~k:(report_read "alice"));
  at 2.0 (fun () -> Leases.Client.read alice file ~k:(report_read "alice"));
  (* within the lease term: a free cache hit *)
  at 3.0 (fun () -> Leases.Client.read bob file ~k:(report_read "bob"));
  (* bob now holds a lease too, so alice's write needs bob's approval *)
  at 4.0 (fun () -> Leases.Client.write alice file ~k:(report_write "alice"));
  at 5.0 (fun () -> Leases.Client.read bob file ~k:(report_read "bob"));
  (* bob's copy was invalidated by the approval: this one re-fetches *)
  at 15.0 (fun () -> Leases.Client.read alice file ~k:(report_read "alice"));
  (* alice's lease has expired by now: an extension round trip *)
  Engine.run engine;

  printf "\nalice: %d hits / %d misses;  bob: %d hits / %d misses\n"
    (Leases.Client.hits alice) (Leases.Client.misses alice) (Leases.Client.hits bob)
    (Leases.Client.misses bob);
  printf "bob answered %d approval callback(s); the store is at version %d\n"
    (Leases.Client.approvals_answered bob)
    (Vstore.Version.to_int (Vstore.Store.current store file))
